// docs-check: the documentation gate, run as a tier-1 ctest.
//
// Five invariants, checked against the living code so the docs cannot
// silently rot (scanning helpers shared with tools/lint — one parser,
// two gates; DESIGN.md §13):
//
//  1. Schema honesty. obs::known_metric_names() — the list the lint
//     gate enforces at call sites — must name exactly the metrics a
//     freshly constructed AnalysisEngine, fault filter and daemon
//     front end register, and obs::known_placeholder_labels() must
//     match the core/vfs/daemon enums it mirrors. This pins the
//     static schema to the runtime.
//
//  2. Metric parity. The metrics schema table in docs/OBSERVABILITY.md
//     (between the `<!-- metrics-schema:begin -->` / `end` markers) must
//     name exactly the metrics a freshly constructed AnalysisEngine
//     registers — nothing missing, nothing stale. Per-indicator counter
//     families are documented once as `name.<indicator>`.
//
//  3. Span-name parity. The span-schema table in docs/OBSERVABILITY.md
//     (between the `<!-- span-schema:begin -->` / `end` markers) must
//     name exactly obs::known_span_names() — both directions, like the
//     metric table.
//
//  4. Doc comments. Every public type and function in the repo's public
//     headers (the fixed list below) must carry a comment on the
//     preceding line (lint::HeaderScanner).
//
//  5. Control-API parity. The request-type table in docs/DAEMON.md
//     (between the `<!-- control-schema:begin -->` / `end` markers)
//     must name exactly daemon::known_request_types() — every wire
//     request the dispatcher answers is documented, and nothing the
//     docs promise has quietly been removed.
//
//  6. Event-schema parity. The journal-event table in
//     docs/OBSERVABILITY.md (between the `<!-- event-schema:begin -->`
//     / `end` markers) must name exactly daemon::all_event_kinds() —
//     every structured event the daemon can journal is documented.
//
// Usage: docs_check <repo-root>   (exit 0 = docs in sync)
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "daemon/control.hpp"
#include "daemon/metrics.hpp"
#include "daemon/telemetry.hpp"
#include "entropy/backend.hpp"
#include "lint/scan.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/span.hpp"
#include "vfs/fault_filter.hpp"

namespace {

using cryptodrop::core::AnalysisEngine;
using cryptodrop::core::Indicator;
using cryptodrop::core::ScoringConfig;
namespace lint = cryptodrop::lint;

/// Indicator labels straight from the core enum, for validating the
/// obs schema and collapsing per-indicator families into one
/// documented `family.<indicator>` row.
std::vector<std::string> indicator_labels() {
  static constexpr Indicator kAll[] = {
      Indicator::entropy_delta,   Indicator::type_change,
      Indicator::similarity_drop, Indicator::deletion,
      Indicator::funneling,       Indicator::union_indication,
      Indicator::burst_rate,
  };
  std::vector<std::string> labels;
  for (Indicator ind : kAll) {
    labels.emplace_back(cryptodrop::core::indicator_name(ind));
  }
  return labels;
}

/// Fault-kind labels straight from the vfs enum, for the `<fault>`
/// placeholder family.
std::vector<std::string> fault_labels() {
  using cryptodrop::vfs::FaultKind;
  static constexpr FaultKind kAll[] = {
      FaultKind::io_error, FaultKind::access_denied,
      FaultKind::short_write, FaultKind::delay_post,
  };
  std::vector<std::string> labels;
  for (FaultKind kind : kAll) {
    labels.emplace_back(cryptodrop::vfs::fault_kind_name(kind));
  }
  return labels;
}

/// Entropy-backend labels straight from the entropy enum, for the
/// `<entropy_backend>` placeholder family (per-backend vote counters).
std::vector<std::string> entropy_backend_labels() {
  std::vector<std::string> labels;
  for (cryptodrop::entropy::BackendKind kind :
       cryptodrop::entropy::all_backend_kinds()) {
    labels.emplace_back(cryptodrop::entropy::backend_name(kind));
  }
  return labels;
}

/// Shed-reason labels straight from the daemon enum, for the
/// `<shed_reason>` placeholder family (per-reason drop counters).
std::vector<std::string> shed_reason_labels() {
  std::vector<std::string> labels;
  for (cryptodrop::daemon::ShedReason reason :
       cryptodrop::daemon::all_shed_reasons()) {
    labels.emplace_back(cryptodrop::daemon::shed_reason_name(reason));
  }
  return labels;
}

/// Placeholder -> labels, derived from the real enums (not from obs —
/// invariant 1 is exactly that obs agrees with this map).
std::map<std::string, std::vector<std::string>> enum_placeholder_labels() {
  return {{"<indicator>", indicator_labels()},
          {"<fault>", fault_labels()},
          {"<entropy_backend>", entropy_backend_labels()},
          {"<shed_reason>", shed_reason_labels()}};
}

/// Every metric name a default-config engine, a default-plan fault
/// filter and a fresh daemon front end register, families collapsed,
/// sorted and deduplicated.
std::set<std::string> registered_metric_names() {
  const AnalysisEngine engine{ScoringConfig{}};
  const cryptodrop::vfs::FaultInjectionFilter filter{cryptodrop::vfs::FaultPlan{}};
  const cryptodrop::daemon::DaemonMetrics daemon_metrics;
  const auto placeholders = enum_placeholder_labels();
  std::set<std::string> names;
  for (const cryptodrop::obs::MetricsSnapshot& snap :
       {engine.metrics_snapshot(), filter.metrics_snapshot(),
        daemon_metrics.snapshot()}) {
    for (const auto& c : snap.counters) {
      names.insert(lint::collapse_family(c.name, placeholders));
    }
    for (const auto& g : snap.gauges) {
      names.insert(lint::collapse_family(g.name, placeholders));
    }
    for (const auto& h : snap.histograms) {
      names.insert(lint::collapse_family(h.name, placeholders));
    }
  }
  return names;
}

// --- invariant 1: obs schema matches the runtime -----------------------

int check_schema_honesty() {
  int failures = 0;

  // Placeholder label sets must mirror the enums verbatim (order too —
  // both are schema order).
  for (const auto& [placeholder, labels] : enum_placeholder_labels()) {
    std::vector<std::string> listed;
    for (std::string_view label :
         cryptodrop::obs::known_placeholder_labels(placeholder)) {
      listed.emplace_back(label);
    }
    if (listed != labels) {
      std::fprintf(stderr,
                   "docs-check: obs::known_placeholder_labels(\"%s\") "
                   "disagrees with the enum it mirrors (%zu vs %zu labels)\n",
                   placeholder.c_str(), listed.size(), labels.size());
      ++failures;
    }
  }

  // known_metric_names() must name exactly what a live engine + fault
  // filter register (collapsed to families).
  std::set<std::string> known;
  for (std::string_view name : cryptodrop::obs::known_metric_names()) {
    known.insert(std::string(name));
  }
  const std::set<std::string> registered = registered_metric_names();
  for (const std::string& name : registered) {
    if (known.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: metric `%s` is registered at runtime but "
                   "missing from obs::known_metric_names()\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : known) {
    if (registered.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: obs::known_metric_names() lists `%s` but "
                   "no engine registers it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: obs name schema matches runtime (%zu families)\n",
                known.size());
  }
  return failures;
}

// --- invariant 2: metric parity ----------------------------------------

int check_metric_parity(const std::string& root) {
  const std::string doc_path = root + "/docs/OBSERVABILITY.md";
  const std::set<std::string> registered = registered_metric_names();
  const std::set<std::string> documented = lint::schema_table_tokens(
      lint::read_lines_or_exit(doc_path), "metrics-schema:begin",
      "metrics-schema:end");
  int failures = 0;
  for (const std::string& name : registered) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: metric `%s` is registered by the engine but "
                   "missing from the docs/OBSERVABILITY.md schema table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (registered.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: docs/OBSERVABILITY.md documents metric `%s` "
                   "but no engine registers it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: metric schema in sync (%zu metrics)\n",
                registered.size());
  }
  return failures;
}

// --- invariant 3: span-name parity -------------------------------------

int check_span_parity(const std::string& root) {
  const std::string doc_path = root + "/docs/OBSERVABILITY.md";
  std::set<std::string> emitted;
  for (std::string_view name : cryptodrop::obs::known_span_names()) {
    emitted.insert(std::string(name));
  }
  const std::set<std::string> documented = lint::schema_table_tokens(
      lint::read_lines_or_exit(doc_path), "span-schema:begin",
      "span-schema:end");
  int failures = 0;
  for (const std::string& name : emitted) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: span `%s` is emitted by the instrumentation "
                   "but missing from the docs/OBSERVABILITY.md span table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (emitted.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: docs/OBSERVABILITY.md documents span `%s` but "
                   "no instrumentation emits it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: span schema in sync (%zu span names)\n",
                emitted.size());
  }
  return failures;
}

// --- invariant 4: header doc comments ----------------------------------

int check_header_docs(const std::string& root) {
  // Every header under src/ is public API surface — the list is a
  // glob, not a hand-maintained array, so new headers join the gate
  // the moment they land (PR 5's curated list had drifted three
  // subsystems behind by PR 10).
  std::vector<std::string> headers;
  for (const auto& entry : std::filesystem::recursive_directory_iterator(
           std::filesystem::path(root) / "src")) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".hpp" && ext != ".h") continue;
    headers.push_back(
        std::filesystem::relative(entry.path(), root).generic_string());
  }
  std::sort(headers.begin(), headers.end());
  lint::HeaderScanner scanner;
  for (const std::string& header : headers) {
    scanner.scan(header, lint::read_lines_or_exit(root + "/" + header));
  }
  if (scanner.failures == 0) {
    std::printf("docs-check: all public declarations documented (%zu headers)\n",
                headers.size());
  }
  return scanner.failures;
}

// --- invariant 5: control-API parity -----------------------------------

int check_control_parity(const std::string& root) {
  const std::string doc_path = root + "/docs/DAEMON.md";
  std::set<std::string> handled;
  for (std::string_view name : cryptodrop::daemon::known_request_types()) {
    handled.insert(std::string(name));
  }
  const std::set<std::string> documented = lint::schema_table_tokens(
      lint::read_lines_or_exit(doc_path), "control-schema:begin",
      "control-schema:end");
  int failures = 0;
  for (const std::string& name : handled) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: control request `%s` is handled by the daemon "
                   "dispatcher but missing from the docs/DAEMON.md request "
                   "table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (handled.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: docs/DAEMON.md documents control request `%s` "
                   "but the dispatcher does not handle it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: control-API schema in sync (%zu request types)\n",
                handled.size());
  }
  return failures;
}

// --- invariant 6: journal event-schema parity --------------------------

int check_event_parity(const std::string& root) {
  const std::string doc_path = root + "/docs/OBSERVABILITY.md";
  std::set<std::string> emitted;
  for (cryptodrop::daemon::EventKind kind :
       cryptodrop::daemon::all_event_kinds()) {
    emitted.insert(std::string(cryptodrop::daemon::event_kind_name(kind)));
  }
  const std::set<std::string> documented = lint::schema_table_tokens(
      lint::read_lines_or_exit(doc_path), "event-schema:begin",
      "event-schema:end");
  int failures = 0;
  for (const std::string& name : emitted) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: journal event `%s` is emitted by the daemon "
                   "but missing from the docs/OBSERVABILITY.md event table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (emitted.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: docs/OBSERVABILITY.md documents journal event "
                   "`%s` but the daemon never emits it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: journal event schema in sync (%zu kinds)\n",
                emitted.size());
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  int failures = 0;
  failures += check_schema_honesty();
  failures += check_metric_parity(root);
  failures += check_span_parity(root);
  failures += check_header_docs(root);
  failures += check_control_parity(root);
  failures += check_event_parity(root);
  if (failures != 0) {
    std::fprintf(stderr, "docs-check: %d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
