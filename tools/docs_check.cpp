// docs-check: the documentation gate, run as a tier-1 ctest.
//
// Two invariants, checked against the living code so the docs cannot
// silently rot:
//
//  1. Metric parity. The metrics schema table in docs/OBSERVABILITY.md
//     (between the `<!-- metrics-schema:begin -->` / `end` markers) must
//     name exactly the metrics a freshly constructed AnalysisEngine
//     registers — nothing missing, nothing stale. Per-indicator counter
//     families are documented once as `name.<indicator>`.
//
//  2. Span-name parity. The span-schema table in docs/OBSERVABILITY.md
//     (between the `<!-- span-schema:begin -->` / `end` markers) must
//     name exactly obs::known_span_names() — both directions, like the
//     metric table.
//
//  3. Doc comments. Every public type and function in the repo's public
//     headers (the fixed list below) must carry a comment on the
//     preceding line. The scan is a deliberately simple heuristic — it
//     tracks brace depth, public/private sections, and statement
//     starts — so keep header formatting conventional.
//
// Usage: docs_check <repo-root>   (exit 0 = docs in sync)
#include <cctype>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "vfs/fault_filter.hpp"

namespace {

using cryptodrop::core::AnalysisEngine;
using cryptodrop::core::Indicator;
using cryptodrop::core::ScoringConfig;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "docs-check: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// --- invariant 1: metric parity ----------------------------------------

/// Indicator labels, for collapsing per-indicator metric families into
/// one documented `family.<indicator>` row.
std::vector<std::string> indicator_labels() {
  static constexpr Indicator kAll[] = {
      Indicator::entropy_delta,   Indicator::type_change,
      Indicator::similarity_drop, Indicator::deletion,
      Indicator::funneling,       Indicator::union_indication,
      Indicator::burst_rate,
  };
  std::vector<std::string> labels;
  for (Indicator ind : kAll) {
    labels.emplace_back(cryptodrop::core::indicator_name(ind));
  }
  return labels;
}

/// Fault-kind labels, for collapsing the fault filter's per-kind counter
/// family into one documented `name.<fault>` row.
std::vector<std::string> fault_labels() {
  using cryptodrop::vfs::FaultKind;
  static constexpr FaultKind kAll[] = {
      FaultKind::io_error, FaultKind::access_denied,
      FaultKind::short_write, FaultKind::delay_post,
  };
  std::vector<std::string> labels;
  for (FaultKind kind : kAll) {
    labels.emplace_back(cryptodrop::vfs::fault_kind_name(kind));
  }
  return labels;
}

/// Replaces a per-indicator or per-fault suffix with its placeholder,
/// e.g. "indicator_events_total.entropy_delta" -> "indicator_events_total.<indicator>",
/// "faults_injected_total.io_error" -> "faults_injected_total.<fault>".
std::string collapse_family(const std::string& name) {
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos) return name;
  const std::string suffix = name.substr(dot + 1);
  for (const std::string& label : indicator_labels()) {
    if (suffix == label) return name.substr(0, dot) + ".<indicator>";
  }
  for (const std::string& label : fault_labels()) {
    if (suffix == label) return name.substr(0, dot) + ".<fault>";
  }
  return name;
}

/// Every metric name a default-config engine and a default-plan fault
/// filter register, families collapsed, sorted and deduplicated.
std::set<std::string> registered_metric_names() {
  const AnalysisEngine engine{ScoringConfig{}};
  const cryptodrop::vfs::FaultInjectionFilter filter{cryptodrop::vfs::FaultPlan{}};
  std::set<std::string> names;
  for (const cryptodrop::obs::MetricsSnapshot& snap :
       {engine.metrics_snapshot(), filter.metrics_snapshot()}) {
    for (const auto& c : snap.counters) names.insert(collapse_family(c.name));
    for (const auto& g : snap.gauges) names.insert(collapse_family(g.name));
    for (const auto& h : snap.histograms) names.insert(collapse_family(h.name));
  }
  return names;
}

/// Metric names documented in OBSERVABILITY.md: the first `backticked`
/// token of every table row between the metrics-schema markers.
std::set<std::string> documented_metric_names(const std::string& doc_path) {
  std::set<std::string> names;
  bool in_schema = false;
  for (const std::string& raw : read_lines(doc_path)) {
    const std::string line = trim(raw);
    if (line.find("metrics-schema:begin") != std::string::npos) {
      in_schema = true;
      continue;
    }
    if (line.find("metrics-schema:end") != std::string::npos) in_schema = false;
    if (!in_schema || line.empty() || line[0] != '|') continue;
    const std::size_t open = line.find('`');
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    const std::string token = line.substr(open + 1, close - open - 1);
    if (!token.empty() && token.find(' ') == std::string::npos) {
      names.insert(token);
    }
  }
  return names;
}

int check_metric_parity(const std::string& root) {
  const std::string doc_path = root + "/docs/OBSERVABILITY.md";
  const std::set<std::string> registered = registered_metric_names();
  const std::set<std::string> documented = documented_metric_names(doc_path);
  int failures = 0;
  for (const std::string& name : registered) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: metric `%s` is registered by the engine but "
                   "missing from the docs/OBSERVABILITY.md schema table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (registered.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: docs/OBSERVABILITY.md documents metric `%s` "
                   "but no engine registers it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: metric schema in sync (%zu metrics)\n",
                registered.size());
  }
  return failures;
}

// --- invariant 2: span-name parity -------------------------------------

/// First-`backticked` tokens of table rows between a begin/end marker
/// pair in OBSERVABILITY.md (shared row shape with the metric table).
std::set<std::string> documented_schema_tokens(const std::string& doc_path,
                                               const char* begin_marker,
                                               const char* end_marker) {
  std::set<std::string> names;
  bool in_schema = false;
  for (const std::string& raw : read_lines(doc_path)) {
    const std::string line = trim(raw);
    if (line.find(begin_marker) != std::string::npos) {
      in_schema = true;
      continue;
    }
    if (line.find(end_marker) != std::string::npos) in_schema = false;
    if (!in_schema || line.empty() || line[0] != '|') continue;
    const std::size_t open = line.find('`');
    if (open == std::string::npos) continue;
    const std::size_t close = line.find('`', open + 1);
    if (close == std::string::npos) continue;
    const std::string token = line.substr(open + 1, close - open - 1);
    if (!token.empty() && token.find(' ') == std::string::npos) {
      names.insert(token);
    }
  }
  return names;
}

int check_span_parity(const std::string& root) {
  const std::string doc_path = root + "/docs/OBSERVABILITY.md";
  std::set<std::string> emitted;
  for (std::string_view name : cryptodrop::obs::known_span_names()) {
    emitted.insert(std::string(name));
  }
  const std::set<std::string> documented = documented_schema_tokens(
      doc_path, "span-schema:begin", "span-schema:end");
  int failures = 0;
  for (const std::string& name : emitted) {
    if (documented.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: span `%s` is emitted by the instrumentation "
                   "but missing from the docs/OBSERVABILITY.md span table\n",
                   name.c_str());
      ++failures;
    }
  }
  for (const std::string& name : documented) {
    if (emitted.count(name) == 0) {
      std::fprintf(stderr,
                   "docs-check: docs/OBSERVABILITY.md documents span `%s` but "
                   "no instrumentation emits it\n",
                   name.c_str());
      ++failures;
    }
  }
  if (failures == 0) {
    std::printf("docs-check: span schema in sync (%zu span names)\n",
                emitted.size());
  }
  return failures;
}

// --- invariant 3: header doc comments ----------------------------------

/// One lexical scope opened by '{': a namespace, a class/struct body
/// (with its current access level), or anything else (function bodies,
/// enums, initializers) whose contents are never doc candidates.
struct Scope {
  enum Kind { ns, record, other } kind = other;
  bool is_public = true;  ///< Current access level (records only).
};

struct HeaderScanner {
  std::vector<Scope> scopes;
  bool in_block_comment = false;
  bool prev_line_was_comment = false;
  bool statement_open = false;   ///< Mid-statement (previous code line did not end one).
  std::string statement_text;    ///< Code accumulated since the statement start.
  int failures = 0;

  /// True when a declaration here is part of the public API surface.
  [[nodiscard]] bool in_public_scope() const {
    if (scopes.empty()) return false;  // require at least a namespace
    for (const Scope& s : scopes) {
      if (s.kind == Scope::other) return false;
      if (s.kind == Scope::record && !s.is_public) return false;
    }
    return true;
  }

  /// Strips comments (tracking block-comment state) and string literals.
  std::string code_of(const std::string& line) {
    std::string out;
    bool in_string = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      if (in_block_comment) {
        if (line[i] == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (in_string) {
        if (line[i] == '\\') {
          ++i;
        } else if (line[i] == '"') {
          in_string = false;
        }
        continue;
      }
      if (line[i] == '"') {
        in_string = true;
        out += '"';  // keep a placeholder so "..." still reads as a token
        continue;
      }
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (line[i] == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      out += line[i];
    }
    return out;
  }

  /// Classifies the scope a '{' opens from the statement that led to it.
  [[nodiscard]] static Scope classify(const std::string& statement) {
    const std::string t = trim(statement);
    if (starts_with(t, "namespace") || t.find(" namespace ") != std::string::npos) {
      return Scope{Scope::ns, true};
    }
    if (starts_with(t, "enum")) return Scope{Scope::other, true};
    if (starts_with(t, "struct") || starts_with(t, "class") ||
        starts_with(t, "template")) {
      // Struct members default public, class members private.
      return Scope{Scope::record, t.find("struct") != std::string::npos};
    }
    return Scope{Scope::other, true};
  }

  /// A statement-start line that opens a public declaration needing a
  /// doc comment: a function (contains '(') or a record definition.
  [[nodiscard]] static bool needs_doc(const std::string& code) {
    const std::string t = trim(code);
    if (t.empty() || t[0] == '#' || t[0] == '}' || t[0] == ')' ||
        t[0] == '{' || t[0] == '~') {
      return false;  // continuations, closers, destructors
    }
    if (starts_with(t, "public:") || starts_with(t, "private:") ||
        starts_with(t, "protected:")) {
      return false;
    }
    if (starts_with(t, "namespace") || starts_with(t, "using namespace")) return false;
    if (starts_with(t, "friend") || starts_with(t, "typedef")) return false;
    if (t.find("= default") != std::string::npos ||
        t.find("= delete") != std::string::npos) {
      return false;
    }
    if (starts_with(t, "struct") || starts_with(t, "class") ||
        starts_with(t, "enum")) {
      // Definitions only; `class X;` forward declarations are exempt.
      return t.find('{') != std::string::npos || t.back() != ';';
    }
    return t.find('(') != std::string::npos;
  }

  void scan(const std::string& path, const std::string& display_name) {
    const std::vector<std::string> lines = read_lines(path);
    for (std::size_t n = 0; n < lines.size(); ++n) {
      const std::string& raw = lines[n];
      const bool was_in_block = in_block_comment;
      const std::string code = code_of(raw);
      const std::string tcode = trim(code);
      if (tcode.empty()) {
        // Blank or pure-comment line. Blank lines break a doc block.
        prev_line_was_comment = was_in_block || in_block_comment ||
                                !trim(raw).empty();
        continue;
      }

      if (!statement_open) {
        statement_text.clear();
        if (in_public_scope() && needs_doc(code) && !prev_line_was_comment) {
          std::fprintf(stderr,
                       "docs-check: %s:%zu: public declaration lacks a doc "
                       "comment: %s\n",
                       display_name.c_str(), n + 1,
                       trim(raw).substr(0, 60).c_str());
          ++failures;
        }
      }

      // Walk the code to keep brace depth and statement state current.
      statement_text += ' ';
      for (char c : code) {
        if (c == '{') {
          scopes.push_back(classify(statement_text));
          statement_text.clear();
        } else if (c == '}') {
          if (!scopes.empty()) scopes.pop_back();
          statement_text.clear();
        } else {
          statement_text += c;
        }
      }

      const char last = tcode.back();
      statement_open = !(last == ';' || last == '{' || last == '}' || last == ':');
      if (!statement_open) statement_text.clear();

      // Access specifiers flip the innermost record's visibility.
      if (!scopes.empty() && scopes.back().kind == Scope::record) {
        if (starts_with(tcode, "public:")) scopes.back().is_public = true;
        if (starts_with(tcode, "private:") || starts_with(tcode, "protected:")) {
          scopes.back().is_public = false;
        }
      }
      prev_line_was_comment = false;
    }
    scopes.clear();
    statement_open = false;
    statement_text.clear();
    prev_line_was_comment = false;
  }
};

int check_header_docs(const std::string& root) {
  static const char* kPublicHeaders[] = {
      "src/obs/metrics.hpp",      "src/obs/timeline.hpp",
      "src/obs/span.hpp",         "src/obs/trace_export.hpp",
      "src/core/engine.hpp",      "src/core/session.hpp",
      "src/core/config.hpp",      "src/harness/runner.hpp",
      "src/harness/experiment.hpp", "src/harness/report.hpp",
      "src/vfs/fault_filter.hpp", "src/harness/chaos.hpp",
  };
  HeaderScanner scanner;
  for (const char* header : kPublicHeaders) {
    scanner.scan(root + "/" + header, header);
  }
  if (scanner.failures == 0) {
    std::printf("docs-check: all public declarations documented (%zu headers)\n",
                std::size(kPublicHeaders));
  }
  return scanner.failures;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : ".";
  int failures = 0;
  failures += check_metric_parity(root);
  failures += check_span_parity(root);
  failures += check_header_docs(root);
  if (failures != 0) {
    std::fprintf(stderr, "docs-check: %d failure(s)\n", failures);
    return 1;
  }
  return 0;
}
