// cryptodrop — command-line driver for the simulation framework.
//
//   cryptodrop sample   --family TeslaCrypt [--class A|B|C] [--seed N]
//                       [--corpus N] [--json]
//   cryptodrop benign   --app "Microsoft Word" [--corpus N] [--json]
//   cryptodrop campaign [--corpus N] [--samples N] [--jobs N] [--json] [--full]
//   cryptodrop corpus   [--corpus N] [--seed N]
//   cryptodrop families
//   cryptodrop apps
//
// Scoring flags (sample/benign/campaign): --threshold N,
// --union-threshold N, --entropy-backend NAME (shannon | chi_square |
// serial_correlation | daa), --entropy-ensemble NAME[:W],... (weighted
// multi-backend voting), --daa-window N. The assembled config is
// validated before any trial runs; a nonsensical combination exits 2
// with the reason.
//
// Fault injection (sample/benign/campaign): --fault-rate R stacks a
// FaultInjectionFilter below the engine with FaultPlan::uniform(R)
// faults (I/O errors, spurious denials, short writes, delayed posts);
// --fault-seed N seeds the fault stream (default 2016). Faulted runs
// judge detection strictly by engine suspension and fold the filter's
// faults_injected_total counters into the metrics sidecar.
//
// Observability: sample/benign/campaign accept --metrics-out FILE and
// write the instrumentation sidecar there — merged engine metrics plus
// one forensic timeline per run (schema in docs/OBSERVABILITY.md).
// --trace-out FILE enables span tracing and writes every trial's spans
// as one Chrome trace-event JSON (load at ui.perfetto.dev);
// --trace-sample N keeps 1-in-N operations (suspended processes always
// keep everything). `cryptodrop trace-report --in FILE [--top K]` folds
// such a file into critical-path tables: per-stage self time, top-k
// slowest operations, per-indicator cost attribution.
//
// Everything is deterministic in the seeds (campaign results are
// bit-identical at any --jobs count); --json emits the harness's
// machine-readable report instead of tables.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/stats.hpp"
#include "daemon/server.hpp"
#include "daemon/wire.hpp"
#include "obs/export_prom.hpp"
#include "entropy/backend.hpp"
#include "entropy/entropy.hpp"
#include "harness/chaos.hpp"
#include "harness/daemon_runner.hpp"
#include "obs/trace_export.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"
#include "vfs/path.hpp"

using namespace cryptodrop;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool flag(const std::string& name) const { return options.contains(name); }
  std::string get(const std::string& name, const std::string& fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback : it->second;
  }
  std::size_t get_size(const std::string& name, std::size_t fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback
                               : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  double get_double(const std::string& name, double fallback) const {
    auto it = options.find(name);
    return it == options.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc > 1) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      args.options[token] = argv[++i];
    } else {
      args.options[token] = "1";
    }
  }
  return args;
}

/// Parses "--entropy-ensemble name:weight,name:weight" (weight optional,
/// default 1) into an EnsembleConfig member list. Throws on an unknown
/// backend name; weight/duplicate errors surface via validate().
std::vector<core::EnsembleMember> parse_ensemble(const std::string& spec) {
  std::vector<core::EnsembleMember> members;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    core::EnsembleMember member;
    const std::size_t colon = item.find(':');
    std::string name = item.substr(0, colon);
    if (colon != std::string::npos) {
      member.weight = std::strtod(item.c_str() + colon + 1, nullptr);
    }
    const auto kind = entropy::backend_from_name(name);
    if (!kind.has_value()) {
      throw std::invalid_argument("--entropy-ensemble: unknown backend `" +
                                  name + "`");
    }
    member.backend = *kind;
    members.push_back(member);
  }
  return members;
}

/// Scoring config from the CLI flags, validated before anything runs.
core::ScoringConfig scoring_config(const Args& args) {
  core::ScoringConfig config;
  config.score_threshold = static_cast<int>(
      args.get_size("threshold", static_cast<std::size_t>(config.score_threshold)));
  if (args.options.contains("union-threshold")) {
    config.union_threshold =
        static_cast<int>(args.get_size("union-threshold", 0));
  } else {
    // Keep the invariant union <= base when only --threshold is lowered.
    config.union_threshold = std::min(config.union_threshold, config.score_threshold);
  }
  const std::string backend = args.get("entropy-backend", "");
  if (!backend.empty()) {
    const auto kind = entropy::backend_from_name(backend);
    if (!kind.has_value()) {
      throw std::invalid_argument("--entropy-backend: unknown backend `" +
                                  backend + "` (shannon, chi_square, "
                                  "serial_correlation, daa)");
    }
    config.entropy.backend = *kind;
  }
  const std::string ensemble = args.get("entropy-ensemble", "");
  if (!ensemble.empty()) {
    config.entropy.ensemble.members = parse_ensemble(ensemble);
  }
  config.entropy.daa_window_bytes =
      args.get_size("daa-window", config.entropy.daa_window_bytes);
  const Status valid = config.validate();
  if (!valid.is_ok()) {
    throw std::invalid_argument("scoring config: " + valid.to_string());
  }
  return config;
}

/// Fault-injection options from --fault-rate / --fault-seed, or nullopt
/// when neither flag was given (fault-free run). The plan is validated
/// by the chaos runners / filter constructor before anything runs.
std::optional<harness::FaultCampaignOptions> fault_options(const Args& args) {
  if (!args.options.contains("fault-rate") && !args.options.contains("fault-seed")) {
    return std::nullopt;
  }
  harness::FaultCampaignOptions options;
  options.plan = vfs::FaultPlan::uniform(args.get_double("fault-rate", 0.0),
                                         args.get_size("fault-seed", 2016));
  return options;
}

/// Span-tracing options from --trace-out / --trace-sample. Tracing is
/// on exactly when a destination file was named.
obs::TraceOptions trace_options(const Args& args) {
  obs::TraceOptions trace;
  trace.enabled = !args.get("trace-out", "").empty();
  trace.sample_every = std::max<std::size_t>(args.get_size("trace-sample", 1), 1);
  return trace;
}

void write_json_file(const std::string& path, const Json& payload,
                     const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error(std::string("cannot open ") + what +
                             " file for writing: " + path);
  }
  const std::string text = payload.to_pretty_string();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
}

/// Writes the --metrics-out sidecar (pretty JSON) if the flag was given.
void maybe_write_metrics(const Args& args, const Json& payload) {
  const std::string path = args.get("metrics-out", "");
  if (path.empty()) return;
  write_json_file(path, payload, "metrics");
}

/// Writes the --trace-out sidecar if the flag was given. On a
/// -DCRYPTODROP_NO_METRICS build the tracer records nothing, so the file
/// is an empty-but-valid trace document.
template <typename Result>
void maybe_write_trace(const Args& args, const std::vector<Result>& results) {
  const std::string path = args.get("trace-out", "");
  if (path.empty()) return;
  write_json_file(path, harness::trace_report(results), "trace");
}

harness::Environment build_env(const Args& args, std::size_t default_files) {
  corpus::CorpusSpec spec;
  spec.total_files = args.get_size("corpus", default_files);
  spec.total_dirs = std::max<std::size_t>(spec.total_files / 10, 16);
  spec.compute_hashes = false;
  std::fprintf(stderr, "building %zu-file corpus...\n", spec.total_files);
  return harness::make_environment(spec, args.get_size("seed", 2016));
}

int cmd_sample(const Args& args) {
  const std::string family = args.get("family", "TeslaCrypt");
  sim::BehaviorClass cls = sim::BehaviorClass::A;
  const std::string cls_str = args.get("class", "A");
  if (cls_str == "B") cls = sim::BehaviorClass::B;
  if (cls_str == "C") cls = sim::BehaviorClass::C;

  const harness::Environment env = build_env(args, 1500);
  sim::SampleSpec spec;
  spec.family = family;
  spec.behavior = cls;
  spec.profile = sim::family_profile(family, cls);
  spec.profile.behavior = cls;
  spec.seed = args.get_size("seed", 7);

  const auto faults = fault_options(args);
  const obs::TraceOptions trace = trace_options(args);
  const auto r = faults.has_value()
                     ? harness::run_ransomware_sample_faulted(
                           env, spec, scoring_config(args), *faults, trace)
                     : harness::run_ransomware_sample_filtered(
                           env, spec, scoring_config(args), nullptr, trace);
  maybe_write_metrics(args, harness::metrics_report(
                                std::vector<harness::RansomwareRunResult>{r}));
  maybe_write_trace(args, std::vector<harness::RansomwareRunResult>{r});
  if (args.flag("json")) {
    std::printf("%s", harness::to_json(r).to_pretty_string().c_str());
    return r.detected ? 0 : 1;
  }
  std::printf("family: %s (Class %s)\n", r.family.c_str(),
              std::string(sim::behavior_class_name(r.behavior)).c_str());
  std::printf("detected: %s | files lost: %zu of %zu | score: %d | union: %s\n",
              r.detected ? "yes" : "NO", r.files_lost, env.corpus.file_count(),
              r.final_score, r.union_triggered ? "yes" : "no");
  std::printf("indicator events: entropy=%llu type=%llu sim=%llu del=%llu funnel=%llu\n",
              static_cast<unsigned long long>(r.report.entropy_events),
              static_cast<unsigned long long>(r.report.type_change_events),
              static_cast<unsigned long long>(r.report.similarity_drop_events),
              static_cast<unsigned long long>(r.report.deletion_events),
              static_cast<unsigned long long>(r.report.funneling_events));
  return r.detected ? 0 : 1;
}

int cmd_benign(const Args& args) {
  const std::string app = args.get("app", "Microsoft Word");
  const harness::Environment env = build_env(args, 1500);
  const auto faults = fault_options(args);
  const obs::TraceOptions trace = trace_options(args);
  const auto r = faults.has_value()
                     ? harness::run_benign_workload_faulted(
                           env, sim::benign_workload(app), scoring_config(args),
                           args.get_size("seed", 9), *faults, trace)
                     : harness::run_benign_workload_filtered(
                           env, sim::benign_workload(app), scoring_config(args),
                           args.get_size("seed", 9), nullptr, trace);
  maybe_write_metrics(args, harness::metrics_report(
                                std::vector<harness::BenignRunResult>{r}));
  maybe_write_trace(args, std::vector<harness::BenignRunResult>{r});
  if (args.flag("json")) {
    std::printf("%s", harness::to_json(r).to_pretty_string().c_str());
  } else {
    std::printf("application: %s\nscore: %d\ndetected: %s%s\nunion: %s\n",
                r.app.c_str(), r.final_score, r.detected ? "yes" : "no",
                r.detected && r.expected_false_positive ? " (expected)" : "",
                r.union_triggered ? "yes" : "no");
  }
  return r.detected && !r.expected_false_positive ? 1 : 0;
}

int cmd_campaign(const Args& args) {
  const harness::Environment env =
      build_env(args, args.flag("full") ? 5099 : 1500);
  auto specs = sim::table1_samples(args.get_size("seed", 1));
  const std::size_t max_samples =
      args.get_size("samples", args.flag("full") ? specs.size() : 100);
  if (max_samples < specs.size()) {
    std::vector<sim::SampleSpec> picked;
    const double stride =
        static_cast<double>(specs.size()) / static_cast<double>(max_samples);
    for (std::size_t i = 0; i < max_samples; ++i) {
      picked.push_back(specs[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
    }
    specs = std::move(picked);
  }
  harness::RunnerOptions options;
  options.jobs = args.get_size("jobs", 0);
  options.trace = trace_options(args);
  options.progress = [](std::size_t done, std::size_t total) {
    if (done % 50 == 0 || done == total) {
      std::fprintf(stderr, "  %zu/%zu\n", done, total);
    }
  };
  std::fprintf(stderr, "running %zu samples on %zu workers...\n", specs.size(),
               harness::effective_jobs(options.jobs));
  const auto faults = fault_options(args);
  const auto results =
      faults.has_value()
          ? harness::run_campaign_faulted(env, specs, scoring_config(args),
                                          *faults, options)
          : harness::run_campaign_parallel(env, specs, scoring_config(args), options);
  maybe_write_metrics(args, harness::metrics_report(results));
  maybe_write_trace(args, results);
  if (args.flag("json")) {
    std::printf("%s", harness::campaign_report(env, results, args.flag("per-sample"))
                          .to_pretty_string()
                          .c_str());
    return 0;
  }
  harness::TextTable table({"Family", "A", "B", "C", "Total", "Median FL"});
  for (const auto& row : harness::aggregate_table1(results)) {
    table.add_row({row.family, std::to_string(row.class_a),
                   std::to_string(row.class_b), std::to_string(row.class_c),
                   std::to_string(row.total),
                   harness::fmt_double(row.median_files_lost, 1)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_trace_report(const Args& args) {
  const std::string path = args.get("in", "");
  if (path.empty()) {
    std::fprintf(stderr, "error: trace-report needs --in FILE (a --trace-out payload)\n");
    return 2;
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  std::string text;
  char buffer[1 << 16];
  for (std::size_t n; (n = std::fread(buffer, 1, sizeof(buffer), f)) > 0;) {
    text.append(buffer, n);
  }
  std::fclose(f);

  const Result<std::vector<obs::TraceEvent>> parsed = obs::parse_trace_events(text);
  if (!parsed.is_ok()) {
    throw std::runtime_error(path + ": " + parsed.status().to_string());
  }
  if (const Status valid = obs::validate_trace_events(parsed.value()); !valid.is_ok()) {
    throw std::runtime_error(path + ": invalid trace: " + valid.to_string());
  }
  const obs::TraceReport report =
      obs::analyze_trace(parsed.value(), args.get_size("top", 10));
  std::printf("%s", obs::format_trace_report(report).c_str());
  return 0;
}

int cmd_corpus(const Args& args) {
  const harness::Environment env = build_env(args, 5099);
  std::map<std::string, std::pair<std::size_t, std::uint64_t>> by_ext;
  for (const corpus::ManifestEntry& entry : env.corpus.manifest) {
    auto& [count, bytes] = by_ext[std::string(corpus::kind_extension(entry.kind))];
    ++count;
    bytes += entry.size;
  }
  harness::TextTable table({"Type", "Files", "Share", "Total MiB", "Mean entropy"});
  for (const auto& [ext, stats] : by_ext) {
    // Sample one file's entropy per type (representative; exact per-file
    // stats are in the corpus tests).
    double entropy_sample = 0.0;
    for (const corpus::ManifestEntry& entry : env.corpus.manifest) {
      if (std::string(corpus::kind_extension(entry.kind)) == ext) {
        entropy_sample = entropy::shannon(ByteView(*entry.original));
        break;
      }
    }
    table.add_row({"." + ext, std::to_string(stats.first),
                   harness::fmt_percent(static_cast<double>(stats.first) /
                                        static_cast<double>(env.corpus.file_count())),
                   harness::fmt_double(static_cast<double>(stats.second) / (1024.0 * 1024.0), 1),
                   harness::fmt_double(entropy_sample, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("\n%zu files, %zu directories, %.1f MiB total\n",
              env.corpus.file_count(),
              env.base_fs.list_dirs_recursive(env.corpus.root).size() + 1,
              static_cast<double>(env.corpus.total_bytes()) / (1024.0 * 1024.0));
  return 0;
}

int cmd_families() {
  harness::TextTable table({"Family", "Traversal (Class A preset)", "Cipher"});
  for (const std::string& name : sim::family_names()) {
    const sim::RansomwareProfile p = sim::family_profile(name, sim::BehaviorClass::A);
    const char* traversal = "?";
    switch (p.traversal) {
      case sim::Traversal::depth_first_deepest: traversal = "depth-first (deepest)"; break;
      case sim::Traversal::size_ascending: traversal = "size ascending"; break;
      case sim::Traversal::root_down: traversal = "root down"; break;
      case sim::Traversal::alphabetical: traversal = "alphabetical"; break;
      case sim::Traversal::random_order: traversal = "random"; break;
      case sim::Traversal::extension_priority: traversal = "extension priority"; break;
    }
    const char* cipher = p.cipher == sim::CipherKind::chacha20 ? "ChaCha20"
                         : p.cipher == sim::CipherKind::aes_ctr ? "AES-128-CTR"
                                                                : "XOR (weak)";
    table.add_row({name, traversal, cipher});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

/// Writes `text` to `path` atomically enough for scrapers (truncate +
/// full rewrite; Prometheus textfile collectors re-read whole files).
bool write_text_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  return true;
}

int cmd_daemon(const Args& args) {
  const std::string socket = args.get("socket", "/tmp/cryptodropd.sock");
  const harness::Environment env = build_env(args, 1500);
  daemon::DaemonOptions options;
  options.workers = std::max<std::size_t>(args.get_size("workers", 4), 1);
  options.queue_capacity = args.get_size("queue-capacity", 4096);
  options.journal_capacity =
      std::max<std::size_t>(args.get_size("journal-capacity", 1024), 1);
  options.default_config = scoring_config(args);
  daemon::Daemon service(env.base_fs, options);
  daemon::SocketServer server(service, socket);
  if (const Status started = server.start(); !started.is_ok()) {
    std::fprintf(stderr, "error: %s\n", started.to_string().c_str());
    return 2;
  }
  // --prom-out: periodic Prometheus text-exposition dumps of the
  // daemon's metrics, for node-exporter-style textfile collection. The
  // dumper sleep-counts in short slices (no deadline clock needed) and
  // always writes one final snapshot on shutdown.
  const std::string prom_out = args.get("prom-out", "");
  const std::size_t prom_interval_ms =
      std::max<std::size_t>(args.get_size("prom-interval-ms", 1000), 50);
  std::atomic<bool> prom_stop{false};
  std::thread prom_thread;
  if (!prom_out.empty()) {
    prom_thread = std::thread([&service, &prom_stop, prom_out,
                               prom_interval_ms] {
      while (!prom_stop.load(std::memory_order_acquire)) {
        for (std::size_t slept = 0;
             slept < prom_interval_ms &&
             !prom_stop.load(std::memory_order_acquire);
             slept += 50) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
        if (!write_text_file(prom_out,
                             obs::to_prometheus(service.metrics()))) {
          std::fprintf(stderr, "warning: cannot write %s\n", prom_out.c_str());
          return;
        }
      }
    });
    std::fprintf(stderr, "prometheus dumps -> %s every %zu ms\n",
                 prom_out.c_str(), prom_interval_ms);
  }
  std::fprintf(stderr,
               "cryptodropd listening on %s (%zu workers, queue capacity %zu)\n"
               "stop with: {\"type\":\"shutdown\"} on the socket\n",
               socket.c_str(), options.workers, options.queue_capacity);
  server.wait();
  if (prom_thread.joinable()) {
    prom_stop.store(true, std::memory_order_release);
    prom_thread.join();
    write_text_file(prom_out, obs::to_prometheus(service.metrics()));
  }
  std::fprintf(stderr, "cryptodropd stopped\n");
  return 0;
}

/// Renders one `stats` watch frame as the `top` screen: health line,
/// queue gauges, per-tenant table, then the most recent events.
void render_top(const daemon::JsonValue& stats,
                const std::deque<std::string>& events, bool plain,
                std::size_t frame_number) {
  if (!plain) std::printf("\x1b[2J\x1b[H");
  std::printf("cryptodrop top — frame %zu | health: %s | queued ops: %.0f\n\n",
              frame_number, stats.string_or("health", "?").c_str(),
              stats.number_or("queue_depth", 0));
  harness::TextTable table({"Tenant", "Worker", "Ingested", "Executed", "Shed"});
  if (const daemon::JsonValue* tenants = stats.find("tenants");
      tenants != nullptr) {
    for (const daemon::JsonValue& row : tenants->items) {
      table.add_row({row.string_or("id", "?"),
                     std::to_string(static_cast<long long>(
                         row.number_or("worker", 0))),
                     std::to_string(static_cast<long long>(
                         row.number_or("ingested", 0))),
                     std::to_string(static_cast<long long>(
                         row.number_or("executed", 0))),
                     std::to_string(static_cast<long long>(
                         row.number_or("shed", 0)))});
    }
  }
  std::printf("%s", table.to_string().c_str());
  if (!events.empty()) {
    std::printf("\nrecent events:\n");
    for (const std::string& event : events) {
      std::printf("  %s\n", event.c_str());
    }
  }
  std::fflush(stdout);
}

int cmd_top(const Args& args) {
  const std::string socket_path = args.get("socket", "/tmp/cryptodropd.sock");
  const std::size_t max_frames = args.get_size("frames", 0);
  const bool plain = args.flag("plain");

  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n",
                 socket_path.c_str());
    return 2;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket: %s\n", std::strerror(errno));
    return 2;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "error: connect %s: %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 2;
  }
  Json request = Json::object().set("type", "watch");
  const std::string tenant = args.get("tenant", "");
  if (!tenant.empty()) request.set("tenant", tenant);
  const std::string line = request.to_string() + "\n";
  if (::write(fd, line.data(), line.size()) !=
      static_cast<ssize_t>(line.size())) {
    std::fprintf(stderr, "error: write: %s\n", std::strerror(errno));
    ::close(fd);
    return 2;
  }

  std::string buffer;
  std::deque<std::string> recent;
  bool acked = false;
  std::size_t stats_seen = 0;
  int exit_code = 0;
  for (bool running = true; running;) {
    const std::size_t nl = buffer.find('\n');
    if (nl == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // Daemon shut down (or dropped us): clean exit.
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    const std::string frame_line = buffer.substr(0, nl);
    buffer.erase(0, nl + 1);
    const std::optional<daemon::JsonValue> parsed =
        daemon::parse_json(frame_line);
    if (!parsed.has_value()) continue;
    if (!acked) {
      acked = true;
      if (!parsed->bool_or("ok", false)) {
        std::fprintf(stderr, "error: watch rejected: %s\n",
                     frame_line.c_str());
        exit_code = 1;
        break;
      }
      continue;
    }
    const std::string kind = parsed->string_or("frame", "");
    if (kind == "event") {
      if (const daemon::JsonValue* event = parsed->find("event");
          event != nullptr) {
        recent.push_back("#" + std::to_string(static_cast<long long>(
                                   event->number_or("cursor", 0))) + " " +
                         event->string_or("kind", "?") + " tenant=" +
                         event->string_or("tenant", "-") + " " +
                         event->string_or("detail", ""));
        while (recent.size() > 8) recent.pop_front();
      }
    } else if (kind == "stats") {
      ++stats_seen;
      render_top(*parsed, recent, plain, stats_seen);
      if (max_frames > 0 && stats_seen >= max_frames) running = false;
    }
  }
  ::close(fd);
  if (stats_seen == 0 && exit_code == 0) {
    std::fprintf(stderr, "stream closed before the first stats frame\n");
    exit_code = 1;
  }
  return exit_code;
}

int cmd_daemon_replay(const Args& args) {
  const std::string socket = args.get("socket", "/tmp/cryptodropd.sock");
  const harness::Environment env = build_env(args, 1500);
  auto specs = sim::table1_samples(args.get_size("sample-seed", 1));
  const std::size_t max_samples = args.get_size("samples", 4);
  if (max_samples < specs.size()) specs.resize(max_samples);
  std::vector<sim::BenignWorkload> benign = sim::all_benign_workloads();
  const std::size_t max_apps = args.get_size("apps", 2);
  if (max_apps < benign.size()) benign.resize(max_apps);

  harness::DaemonParityOptions options;
  options.concurrent_tenants = std::max<std::size_t>(args.get_size("tenants", 8), 1);
  const harness::TransportFactory factory = [socket] {
    auto client = std::make_shared<daemon::DaemonClient>(socket);
    return harness::Transport([client](const std::string& line) {
      const Result<std::string> response = client->request(line);
      if (response.is_ok()) return response.value();
      return "{\"ok\":false,\"error\":\"transport: " +
             response.status().to_string() + "\"}";
    });
  };
  std::fprintf(stderr, "replaying %zu trials over %s with %zu tenants...\n",
               specs.size() + benign.size(), socket.c_str(),
               options.concurrent_tenants);
  const harness::DaemonParityReport report = harness::run_daemon_parity(
      env, specs, benign, args.get_size("seed", 9), scoring_config(args),
      factory, options);
  harness::TextTable table({"Trial", "Tenant", "Ops", "Detected", "Parity"});
  for (const harness::DaemonParityTrial& trial : report.trials) {
    table.add_row({trial.label, trial.tenant, std::to_string(trial.ops),
                   trial.golden_detected ? "yes" : "no",
                   trial.match ? "match" : "MISMATCH"});
  }
  std::printf("%s", table.to_string().c_str());
  std::printf("%zu/%zu scoreboards bit-identical\n",
              report.trials.size() - report.mismatches().size(),
              report.trials.size());
  return report.all_match() ? 0 : 1;
}

int cmd_apps() {
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    std::printf("%s%s\n", workload.name.c_str(),
                workload.expected_false_positive ? "   (expected false positive)" : "");
  }
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: cryptodrop <command> [options]\n"
               "  sample   --family NAME [--class A|B|C] [--seed N] [--corpus N] [--json]\n"
               "  benign   --app NAME [--corpus N] [--seed N] [--json]\n"
               "  campaign [--corpus N] [--samples N] [--jobs N] [--full] [--json] [--per-sample]\n"
               "  trace-report --in FILE [--top K]\n"
               "  daemon   [--socket PATH] [--workers N] [--queue-capacity N]\n"
               "           [--journal-capacity N] [--prom-out FILE] [--prom-interval-ms N]\n"
               "           [--corpus N] [--seed N] (+ scoring flags; docs/DAEMON.md)\n"
               "  daemon-replay [--socket PATH] [--samples N] [--apps N] [--tenants N]\n"
               "           (parity check against a daemon started with the SAME\n"
               "            --corpus/--seed/scoring flags; exits 1 on any mismatch)\n"
               "  top      [--socket PATH] [--tenant ID] [--frames N] [--plain]\n"
               "           (live per-tenant table from the daemon's watch stream)\n"
               "  corpus   [--corpus N] [--seed N]\n"
               "  families\n"
               "  apps\n"
               "scoring flags (sample/benign/campaign): --threshold N, --union-threshold N\n"
               "  --entropy-backend shannon|chi_square|serial_correlation|daa (default shannon)\n"
               "  --entropy-ensemble NAME[:W],NAME[:W],... (weighted multi-backend voting)\n"
               "  --daa-window N (DAA head/tail window bytes, default 2048)\n"
               "fault injection (sample/benign/campaign): --fault-rate R (0..1) stacks a\n"
               "  seeded FaultInjectionFilter below the engine; --fault-seed N (default 2016)\n"
               "observability (sample/benign/campaign): --metrics-out FILE writes merged\n"
               "  engine metrics + per-run forensic timelines as JSON; --trace-out FILE\n"
               "  records per-operation spans and writes Chrome trace-event JSON\n"
               "  (Perfetto-loadable); --trace-sample N keeps 1-in-N operations\n"
               "trace-report folds a --trace-out file into critical-path tables\n");
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  try {
    if (args.command == "sample") return cmd_sample(args);
    if (args.command == "benign") return cmd_benign(args);
    if (args.command == "campaign") return cmd_campaign(args);
    if (args.command == "trace-report") return cmd_trace_report(args);
    if (args.command == "daemon") return cmd_daemon(args);
    if (args.command == "daemon-replay") return cmd_daemon_replay(args);
    if (args.command == "top") return cmd_top(args);
    if (args.command == "corpus") return cmd_corpus(args);
    if (args.command == "families") return cmd_families();
    if (args.command == "apps") return cmd_apps();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage();
  return 2;
}
