// End-to-end integration tests: full stack (corpus -> VFS -> engine ->
// simulators) reproducing the paper's headline claims at reduced scale.
#include <gtest/gtest.h>

#include <map>

#include "common/stats.hpp"
#include "harness/experiment.hpp"

namespace cryptodrop {
namespace {

using harness::Environment;
using harness::RansomwareRunResult;

class IntegrationTest : public ::testing::Test {
 protected:
  static Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 800;
    spec.total_dirs = 80;
    spec.compute_hashes = false;
    env = new Environment(harness::make_environment(spec, 2016));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }
};

Environment* IntegrationTest::env = nullptr;

TEST_F(IntegrationTest, HundredPercentDetectionOneSamplePerFamily) {
  // The headline claim (§V-B): every sample is detected, protecting the
  // vast majority of the corpus.
  std::map<std::string, sim::SampleSpec> first_of_family;
  for (const sim::SampleSpec& s : sim::table1_samples(5)) {
    first_of_family.try_emplace(s.family, s);
  }
  ASSERT_EQ(first_of_family.size(), 15u);  // 14 families + Ransom-FUE
  for (const auto& [family, spec] : first_of_family) {
    const RansomwareRunResult r =
        harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
    EXPECT_TRUE(r.detected) << family;
    EXPECT_LT(r.files_lost, env->corpus.file_count() / 10) << family;
  }
}

TEST_F(IntegrationTest, MedianLossIsSmallAcrossMixedSamples) {
  // 30 samples drawn across the Table-I set: the median loss should be
  // in the paper's order of magnitude (~0.2% of files; allow <2%).
  const auto all = sim::table1_samples(6);
  std::vector<double> losses;
  for (std::size_t i = 0; i < all.size(); i += all.size() / 30) {
    const auto r = harness::run_ransomware_sample(*env, all[i], core::ScoringConfig{});
    EXPECT_TRUE(r.detected);
    losses.push_back(static_cast<double>(r.files_lost));
  }
  const double med = median(losses);
  EXPECT_LE(med, env->corpus.file_count() * 0.02);
  EXPECT_GE(med, 1.0);
}

TEST_F(IntegrationTest, WithoutCryptoDropEverythingIsLost) {
  // The counterfactual the paper argues against: no monitor, total loss.
  vfs::FileSystem fs = env->base_fs.clone();
  const vfs::ProcessId pid = fs.register_process("malware");
  sim::RansomwareProfile profile =
      sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  profile.target_extensions.clear();  // attack every file type
  sim::RansomwareSample sample(profile, 1);
  const sim::SampleRun run = sample.run(fs, pid, env->corpus.root);
  EXPECT_TRUE(run.ran_to_completion);
  // Read-only corpus files can still be renamed/overwritten? No: Class A
  // opens for write, which read-only files refuse — they survive.
  std::size_t read_only = 0;
  for (const auto& e : env->corpus.manifest) read_only += e.read_only ? 1 : 0;
  EXPECT_EQ(corpus::count_files_lost(fs, env->corpus),
            env->corpus.file_count() - read_only);
}

TEST_F(IntegrationTest, UnionDetectionIsFasterThanNonUnion) {
  // §V-B.2: union indication accelerates detection. Compare the same
  // TeslaCrypt sample with union enabled vs. disabled.
  sim::SampleSpec spec;
  spec.family = "TeslaCrypt";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  spec.seed = 77;

  core::ScoringConfig with_union;
  core::ScoringConfig without_union;
  without_union.enable_union = false;
  const auto fast = harness::run_ransomware_sample(*env, spec, with_union);
  const auto slow = harness::run_ransomware_sample(*env, spec, without_union);
  EXPECT_TRUE(fast.detected);
  EXPECT_TRUE(slow.detected);
  EXPECT_LE(fast.files_lost, slow.files_lost);
}

TEST_F(IntegrationTest, ClassBSamplesLoseMoreFilesThanClassA) {
  // §V-B.1: Class B (smallest-documents-first CTB-Locker) had the
  // highest files-lost numbers.
  sim::SampleSpec ctb;
  ctb.family = "CTB-Locker";
  ctb.behavior = sim::BehaviorClass::B;
  ctb.profile = sim::family_profile("CTB-Locker", sim::BehaviorClass::B);
  ctb.seed = 31;

  sim::SampleSpec xorist;
  xorist.family = "Xorist";
  xorist.behavior = sim::BehaviorClass::A;
  xorist.profile = sim::family_profile("Xorist", sim::BehaviorClass::A);
  xorist.seed = 32;

  const auto slow = harness::run_ransomware_sample(*env, ctb, core::ScoringConfig{});
  const auto fast = harness::run_ransomware_sample(*env, xorist, core::ScoringConfig{});
  EXPECT_TRUE(slow.detected);
  EXPECT_TRUE(fast.detected);
  EXPECT_GT(slow.files_lost, fast.files_lost);
}

TEST_F(IntegrationTest, CtbLockerSmallFileAblation) {
  // §V-C: removing sub-512-byte files from the corpus made CTB-Locker
  // detectable much earlier (29 -> 7 in the paper).
  sim::SampleSpec ctb;
  ctb.family = "CTB-Locker";
  ctb.behavior = sim::BehaviorClass::B;
  ctb.profile = sim::family_profile("CTB-Locker", sim::BehaviorClass::B);
  ctb.seed = 33;

  corpus::CorpusSpec filtered = env->spec;
  filtered.min_file_size = 512;
  const Environment env_filtered = harness::make_environment(filtered, 2016);

  const auto with_small = harness::run_ransomware_sample(*env, ctb, core::ScoringConfig{});
  const auto without_small =
      harness::run_ransomware_sample(env_filtered, ctb, core::ScoringConfig{});
  EXPECT_TRUE(with_small.detected);
  EXPECT_TRUE(without_small.detected);
  EXPECT_LT(without_small.files_lost, with_small.files_lost);
}

TEST_F(IntegrationTest, MoveOverClassCTriggersUnionDeleteVariantDoesNot) {
  // §V-B.2's Class C split, end to end.
  sim::SampleSpec mover;
  mover.family = "Virlock";
  mover.behavior = sim::BehaviorClass::C;
  mover.profile = sim::family_profile("Virlock", sim::BehaviorClass::C);
  mover.profile.delete_original = false;
  mover.seed = 41;

  sim::SampleSpec deleter;
  deleter.family = "CryptoDefense";
  deleter.behavior = sim::BehaviorClass::C;
  deleter.profile = sim::family_profile("CryptoDefense", sim::BehaviorClass::C);
  deleter.profile.delete_original = true;
  deleter.seed = 42;

  const auto linked = harness::run_ransomware_sample(*env, mover, core::ScoringConfig{});
  const auto evader = harness::run_ransomware_sample(*env, deleter, core::ScoringConfig{});
  EXPECT_TRUE(linked.detected);
  EXPECT_TRUE(linked.union_triggered);
  EXPECT_TRUE(evader.detected);
  EXPECT_FALSE(evader.union_triggered);
  // Evaders are still caught quickly via entropy + deletion points.
  EXPECT_LT(evader.files_lost, 25u);
}

TEST_F(IntegrationTest, SuspendedSampleCannotResumeDamage) {
  // After detection, re-running the same (suspended) process achieves
  // nothing further; loss count is frozen.
  vfs::FileSystem fs = env->base_fs.clone();
  core::AnalysisEngine engine((core::ScoringConfig()));
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("malware");
  sim::RansomwareProfile profile = sim::family_profile("Filecoder", sim::BehaviorClass::A);
  sim::RansomwareSample sample(profile, 51);
  (void)sample.run(fs, pid, env->corpus.root);
  ASSERT_TRUE(engine.is_suspended(pid));
  const std::size_t lost_before = corpus::count_files_lost(fs, env->corpus);
  sim::RansomwareSample retry(profile, 52);
  const sim::SampleRun second = retry.run(fs, pid, env->corpus.root);
  EXPECT_FALSE(second.ran_to_completion);
  EXPECT_EQ(corpus::count_files_lost(fs, env->corpus), lost_before);
  fs.detach_filter(&engine);
}

TEST_F(IntegrationTest, MultipleProcessesOneInfectedOneClean) {
  // A benign editor keeps working while the malware next to it is caught.
  vfs::FileSystem fs = env->base_fs.clone();
  core::AnalysisEngine engine((core::ScoringConfig()));
  fs.attach_filter(&engine);
  const vfs::ProcessId evil = fs.register_process("malware");
  const vfs::ProcessId good = fs.register_process("editor");

  sim::RansomwareProfile profile = sim::family_profile("CryptoWall", sim::BehaviorClass::A);
  sim::RansomwareSample sample(profile, 61);
  (void)sample.run(fs, evil, env->corpus.root);
  ASSERT_TRUE(engine.is_suspended(evil));

  // The editor appends to a surviving text file.
  for (const auto& entry : env->corpus.manifest) {
    if (entry.kind != corpus::FileKind::txt || entry.read_only) continue;
    if (!fs.exists(entry.path)) continue;
    auto data = fs.read_file(good, entry.path);
    if (!data) continue;
    Bytes next = std::move(data).value();
    append(next, std::string_view("\nappended by editor"));
    EXPECT_TRUE(fs.write_file(good, entry.path, ByteView(next)).is_ok());
    break;
  }
  EXPECT_FALSE(engine.is_suspended(good));
  fs.detach_filter(&engine);
}

}  // namespace
}  // namespace cryptodrop
