// Tests for VFS path normalization and decomposition.
#include <gtest/gtest.h>

#include "vfs/path.hpp"

namespace cryptodrop::vfs {
namespace {

TEST(Path, NormalizeSimple) {
  EXPECT_EQ(normalize_path("a/b/c"), "a/b/c");
}

TEST(Path, NormalizeStripsSlashes) {
  EXPECT_EQ(normalize_path("/a/b/"), "a/b");
  EXPECT_EQ(normalize_path("a//b///c"), "a/b/c");
  EXPECT_EQ(normalize_path("///"), "");
}

TEST(Path, NormalizeEmptyIsRoot) {
  EXPECT_EQ(normalize_path(""), "");
}

TEST(Path, NormalizeRejectsDotComponents) {
  EXPECT_FALSE(normalize_path("a/./b").has_value());
  EXPECT_FALSE(normalize_path("a/../b").has_value());
  EXPECT_FALSE(normalize_path("..").has_value());
}

TEST(Path, NormalizeRejectsEmbeddedNul) {
  const std::string bad("a/b\0c", 5);
  EXPECT_FALSE(normalize_path(bad).has_value());
}

TEST(Path, JoinHandlesRoot) {
  EXPECT_EQ(path_join("", "x"), "x");
  EXPECT_EQ(path_join("a/b", ""), "a/b");
  EXPECT_EQ(path_join("a", "b/c"), "a/b/c");
}

TEST(Path, Parent) {
  EXPECT_EQ(path_parent("a/b/c"), "a/b");
  EXPECT_EQ(path_parent("a"), "");
  EXPECT_EQ(path_parent(""), "");
}

TEST(Path, Filename) {
  EXPECT_EQ(path_filename("a/b/c.txt"), "c.txt");
  EXPECT_EQ(path_filename("c.txt"), "c.txt");
  EXPECT_EQ(path_filename(""), "");
}

TEST(Path, ExtensionLowercasesAndStripsDot) {
  EXPECT_EQ(path_extension("a/report.PDF"), "pdf");
  EXPECT_EQ(path_extension("a/archive.tar.GZ"), "gz");
}

TEST(Path, ExtensionEdgeCases) {
  EXPECT_EQ(path_extension("a/noext"), "");
  EXPECT_EQ(path_extension("a/.hidden"), "");      // leading dot only
  EXPECT_EQ(path_extension("a/trailing."), "");    // empty after dot
  EXPECT_EQ(path_extension("dir.d/file"), "");     // dot in directory
}

TEST(Path, Depth) {
  EXPECT_EQ(path_depth(""), 0u);
  EXPECT_EQ(path_depth("a"), 1u);
  EXPECT_EQ(path_depth("a/b/c"), 3u);
}

TEST(Path, Components) {
  const auto comps = path_components("a/bb/ccc");
  ASSERT_EQ(comps.size(), 3u);
  EXPECT_EQ(comps[0], "a");
  EXPECT_EQ(comps[1], "bb");
  EXPECT_EQ(comps[2], "ccc");
  EXPECT_TRUE(path_components("").empty());
}

TEST(Path, IsUnder) {
  EXPECT_TRUE(path_is_under("docs/a/b.txt", "docs"));
  EXPECT_TRUE(path_is_under("docs", "docs"));
  EXPECT_TRUE(path_is_under("anything", ""));
  EXPECT_FALSE(path_is_under("docs2/a", "docs"));   // prefix but not component
  EXPECT_FALSE(path_is_under("doc", "docs"));
  EXPECT_FALSE(path_is_under("other/docs/a", "docs"));
}

}  // namespace
}  // namespace cryptodrop::vfs
