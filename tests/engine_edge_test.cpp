// Edge-case tests for the analysis engine: handle interleavings, rename
// chains, boundary conditions on thresholds, and report plumbing.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "crypto/chacha20.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::core {
namespace {

constexpr const char* kRoot = "users/victim/documents";

class EngineEdgeTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  ScoringConfig config;
  std::unique_ptr<AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{23};

  void SetUp() override {
    config.protected_root = kRoot;
    config.score_threshold = 1000000;
    config.union_threshold = 1000000;
  }

  void attach() {
    engine = std::make_unique<AnalysisEngine>(config);
    fs.attach_filter(engine.get());
    pid = fs.register_process("subject");
  }

  std::string doc(const std::string& name) { return std::string(kRoot) + "/" + name; }

  void put_prose(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, to_bytes(synth_prose(rng, n))).is_ok());
  }

  Bytes encrypted(const std::string& path) {
    return crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12),
                                    ByteView(*fs.read_unfiltered(path)));
  }
};

TEST_F(EngineEdgeTest, OpenForWriteWithoutWritingScoresNothing) {
  attach();
  put_prose(doc("a.txt"), 20000);
  auto h = fs.open(pid, doc("a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
}

TEST_F(EngineEdgeTest, RenameChainPreservesTracking) {
  // Move a file twice inside the root, then encrypt it: the comparison
  // still runs against the original content via the stable file id.
  attach();
  put_prose(doc("a/orig.txt"), 20000);
  ASSERT_TRUE(fs.rename(pid, doc("a/orig.txt"), doc("b/moved.txt")).is_ok());
  ASSERT_TRUE(fs.rename(pid, doc("b/moved.txt"), doc("c/again.txt")).is_ok());
  EXPECT_EQ(engine->score(pid), 0);  // moves alone are free
  auto h = fs.open(pid, doc("c/again.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), encrypted(doc("c/again.txt"))).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
  EXPECT_EQ(report.similarity_drop_events, 1u);
}

TEST_F(EngineEdgeTest, WriteThenRenameBeforeCloseStillEvaluatesOnce) {
  // A handle stays open across the rename; the close lands on the old
  // path string. The write itself marked the file pending, and the
  // rename (same content pointer) evaluates it at the destination.
  attach();
  put_prose(doc("d/x.txt"), 20000);
  auto h = fs.open(pid, doc("d/x.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), encrypted(doc("d/x.txt"))).is_ok());
  ASSERT_TRUE(fs.rename(pid, doc("d/x.txt"), doc("d/x.txt.vvv")).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
  EXPECT_LE(report.similarity_drop_events, 1u);
}

TEST_F(EngineEdgeTest, SimilarityDropBoundaryIsInclusive) {
  // A compare score exactly at similarity_drop_max counts as "no match".
  // Construct via config: raise the bar to 100 so ANY digestible rewrite
  // (even identical-ish) trips it, proving the <= comparison.
  config.similarity_drop_max = 100;
  attach();
  put_prose(doc("a.txt"), 20000);
  Bytes nearly = *fs.read_unfiltered(doc("a.txt"));
  nearly[100] ^= 1;  // one-byte edit: similarity ~100
  auto h = fs.open(pid, doc("a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), ByteView(nearly)).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 1u);
}

TEST_F(EngineEdgeTest, ObservedOpsCountsOnlyProtectedTraffic) {
  attach();
  put_prose(doc("a.txt"), 1000);
  ASSERT_TRUE(fs.put_file_raw("outside/b.txt", to_bytes("x")).is_ok());
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());       // 3 ops
  ASSERT_TRUE(fs.read_file(pid, "outside/b.txt").is_ok());    // invisible
  EXPECT_EQ(engine->observed_ops(), 3u);
}

TEST_F(EngineEdgeTest, ReadEntropyMeanIsReported) {
  attach();
  put_prose(doc("a.txt"), 30000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_GT(report.read_entropy_mean, 3.5);
  EXPECT_LT(report.read_entropy_mean, 5.0);
  EXPECT_DOUBLE_EQ(report.write_entropy_mean, 0.0);
}

TEST_F(EngineEdgeTest, TwoHandlesSameFileInterleaved) {
  attach();
  put_prose(doc("a.txt"), 20000);
  auto h1 = fs.open(pid, doc("a.txt"), vfs::kRead | vfs::kWrite);
  auto h2 = fs.open(pid, doc("a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h1.is_ok());
  ASSERT_TRUE(h2.is_ok());
  const Bytes ct = encrypted(doc("a.txt"));
  ASSERT_TRUE(fs.write(pid, h1.value(), ByteView(ct).first(ct.size() / 2)).is_ok());
  ASSERT_TRUE(fs.seek(pid, h2.value(), ct.size() / 2).is_ok());
  ASSERT_TRUE(fs.write(pid, h2.value(), ByteView(ct).subspan(ct.size() / 2)).is_ok());
  ASSERT_TRUE(fs.close(pid, h1.value()).is_ok());
  ASSERT_TRUE(fs.close(pid, h2.value()).is_ok());
  const ProcessReport report = engine->process_report(pid);
  // The full transformation is judged (at the first close with a whole
  // pending file); no double counting at the second.
  EXPECT_EQ(report.type_change_events, 1u);
}

TEST_F(EngineEdgeTest, AlertPayloadIsCoherent) {
  config.score_threshold = 30;
  config.union_threshold = 30;
  std::vector<Alert> alerts;
  attach();
  engine->set_alert_callback([&](const Alert& a) { alerts.push_back(a); });
  put_prose(doc("a.txt"), 20000);
  put_prose(doc("b.txt"), 20000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  auto h = fs.open(pid, doc("b.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  (void)fs.write(pid, h.value(), encrypted(doc("b.txt")));
  (void)fs.close(pid, h.value());
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].pid, pid);
  EXPECT_EQ(alerts[0].process_name, "subject");
  EXPECT_GE(alerts[0].score, alerts[0].threshold);
  EXPECT_GT(alerts[0].op_seq, 0u);
}

TEST_F(EngineEdgeTest, ResumeClearsUnionStateToo) {
  config.score_threshold = 30;
  config.union_threshold = 25;
  attach();
  put_prose(doc("a.txt"), 20000);
  put_prose(doc("b.txt"), 20000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  auto h = fs.open(pid, doc("b.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  (void)fs.write(pid, h.value(), encrypted(doc("b.txt")));
  (void)fs.close(pid, h.value());
  ASSERT_TRUE(engine->is_suspended(pid));
  ASSERT_TRUE(engine->process_report(pid).union_triggered);
  engine->resume_process(pid);
  const ProcessReport report = engine->process_report(pid);
  EXPECT_FALSE(report.union_triggered);
  EXPECT_EQ(report.threshold, config.score_threshold);
  EXPECT_EQ(report.score, 0);
}

TEST_F(EngineEdgeTest, EmptyFileOperationsAreHarmless) {
  attach();
  ASSERT_TRUE(fs.put_file_raw(doc("empty"), Bytes{}).is_ok());
  ASSERT_TRUE(fs.read_file(pid, doc("empty")).is_ok());
  auto h = fs.open(pid, doc("empty"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  ASSERT_TRUE(fs.remove(pid, doc("empty")).is_ok());
  // Only the deletion scores.
  EXPECT_EQ(engine->score(pid), config.points_deletion);
}

TEST_F(EngineEdgeTest, TruncateToZeroThenRefillIsJudgedAgainstPreImage) {
  attach();
  put_prose(doc("a.txt"), 20000);
  auto h = fs.open(pid, doc("a.txt"), vfs::kWrite | vfs::kTruncate);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(20000)).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
  EXPECT_EQ(report.similarity_drop_events, 1u);
}

TEST_F(EngineEdgeTest, ChildReportEqualsFamilyRootReport) {
  attach();
  const vfs::ProcessId child = fs.register_process("worker", pid);
  put_prose(doc("a.txt"), 1000);
  ASSERT_TRUE(fs.remove(child, doc("a.txt")).is_ok());
  const ProcessReport via_child = engine->process_report(child);
  const ProcessReport via_root = engine->process_report(pid);
  EXPECT_EQ(via_child.score, via_root.score);
  EXPECT_EQ(via_child.deletion_events, via_root.deletion_events);
}

TEST_F(EngineEdgeTest, FamilyScoringDisabledSeparatesChildren) {
  config.enable_family_scoring = false;
  attach();
  const vfs::ProcessId child = fs.register_process("worker", pid);
  put_prose(doc("a.txt"), 1000);
  ASSERT_TRUE(fs.remove(child, doc("a.txt")).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
  EXPECT_GT(engine->score(child), 0);
}

TEST_F(EngineEdgeTest, DetachedEngineSeesNothingMore) {
  attach();
  put_prose(doc("a.txt"), 1000);
  fs.detach_filter(engine.get());
  ASSERT_TRUE(fs.remove(pid, doc("a.txt")).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
}

}  // namespace
}  // namespace cryptodrop::core
