// The observability layer: metric shard merging, histogram bucket
// semantics, forensic timeline rings, engine.explain(), and the
// determinism contract for metrics across job counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "crypto/chacha20.hpp"
#include "harness/runner.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop {
namespace {

// Under -DCRYPTODROP_NO_METRICS every instrument is a compiled-out no-op
// (that is the contract: empty-but-valid), so tests that assert recorded
// values skip themselves there; behavior tests gate only their metric
// assertions on obs::kMetricsEnabled.
#define SKIP_WITHOUT_METRICS()                                          \
  if (!obs::kMetricsEnabled)                                            \
  GTEST_SKIP() << "instrumentation compiled out (CRYPTODROP_NO_METRICS)"

// --- instruments -------------------------------------------------------

TEST(ObsCounter, SumsAcrossShardsAndThreads) {
  SKIP_WITHOUT_METRICS();
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kAddsPerThread; ++i) counter.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(ObsGauge, LastWriteWins) {
  SKIP_WITHOUT_METRICS();
  obs::Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(3.5);
  gauge.set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  SKIP_WITHOUT_METRICS();
  obs::Histogram hist({1.0, 2.0, 4.0});
  // v lands in the first bucket with v <= bound; past the last bound it
  // goes to the overflow bucket.
  hist.record(0.5);  // bucket 0
  hist.record(1.0);  // bucket 0 (edge is inclusive)
  hist.record(1.5);  // bucket 1
  hist.record(2.0);  // bucket 1
  hist.record(3.0);  // bucket 2
  hist.record(4.0);  // bucket 2
  hist.record(99.0);  // overflow

  const obs::HistogramSnapshot snap = hist.snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 2u);
  EXPECT_EQ(snap.counts[2], 2u);
  EXPECT_EQ(snap.counts[3], 1u);
  EXPECT_EQ(snap.count, 7u);
  EXPECT_DOUBLE_EQ(snap.sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 99.0);
  EXPECT_GT(snap.mean(), 0.0);
}

TEST(ObsHistogram, ShardMergeMatchesTotalAcrossThreads) {
  SKIP_WITHOUT_METRICS();
  obs::Histogram hist(obs::MetricsRegistry::latency_buckets_us());
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 5'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        hist.record(static_cast<double>((t * 31 + i) % 100'000));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const obs::HistogramSnapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kRecordsPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(ObsRegistry, RegistrationIsIdempotentAndStable) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x_total", "help a", "events");
  obs::Counter& b = registry.counter("x_total", "different help ignored");
  EXPECT_EQ(&a, &b);
  SKIP_WITHOUT_METRICS();  // registration checked; values need recording
  a.add(4);
  const obs::MetricsSnapshot snap = registry.snapshot();
  ASSERT_NE(snap.counter("x_total"), nullptr);
  EXPECT_EQ(snap.counter("x_total")->value, 4u);
  EXPECT_EQ(snap.counter("x_total")->help, "help a");
  EXPECT_EQ(snap.counter("missing"), nullptr);
}

TEST(ObsSnapshot, MergeAddsCountersMaxesGaugesAppendsUnseen) {
  SKIP_WITHOUT_METRICS();
  obs::MetricsRegistry a;
  a.counter("shared_total", "h").add(3);
  a.gauge("level", "h").set(2.0);
  a.histogram("lat_us", "h", "microseconds", {1.0, 10.0}).record(0.5);

  obs::MetricsRegistry b;
  b.counter("shared_total", "h").add(5);
  b.counter("only_in_b_total", "h").add(1);
  b.gauge("level", "h").set(7.0);
  b.histogram("lat_us", "h", "microseconds", {1.0, 10.0}).record(5.0);

  obs::MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  EXPECT_EQ(merged.counter("shared_total")->value, 8u);
  EXPECT_EQ(merged.counter("only_in_b_total")->value, 1u);
  EXPECT_EQ(merged.gauge("level")->value, 7.0);
  const obs::HistogramSnapshot* h = merged.histogram("lat_us");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  ASSERT_EQ(h->counts.size(), 3u);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_DOUBLE_EQ(h->sum, 5.5);
}

TEST(ObsSnapshot, ToJsonNamesEveryMetric) {
  obs::MetricsRegistry registry;
  registry.counter("a_total", "counts a", "events").add(2);
  registry.gauge("b", "gauges b").set(1.5);
  registry.histogram("c_us", "times c", "microseconds", {1.0}).record(0.5);
  const std::string text = obs::to_json(registry.snapshot()).to_pretty_string();
  EXPECT_NE(text.find("\"a_total\""), std::string::npos);
  EXPECT_NE(text.find("\"b\""), std::string::npos);
  EXPECT_NE(text.find("\"c_us\""), std::string::npos);
  EXPECT_NE(text.find("\"counters\""), std::string::npos);
  EXPECT_NE(text.find("\"histograms\""), std::string::npos);
}

// --- timeline ring -----------------------------------------------------

obs::TimelineEvent event_with_points(int points) {
  obs::TimelineEvent ev;
  ev.kind = obs::TimelineEventKind::entropy_delta;
  ev.points = points;
  return ev;
}

TEST(ObsTimelineRing, EvictsOldestKeepsSeqNumbers) {
  obs::TimelineRing ring(3);
  for (int i = 0; i < 5; ++i) ring.push(event_with_points(i));
  EXPECT_EQ(ring.events().size(), 3u);
  EXPECT_EQ(ring.total_recorded(), 5u);
  EXPECT_EQ(ring.dropped(), 2u);
  // The survivors are the three newest, and their seq numbers reflect
  // their position in the full (pre-eviction) history.
  EXPECT_EQ(ring.events()[0].seq, 2u);
  EXPECT_EQ(ring.events()[0].points, 2);
  EXPECT_EQ(ring.events()[2].seq, 4u);
  EXPECT_EQ(ring.events()[2].points, 4);
}

TEST(ObsTimelineRing, ZeroCapacityRecordsNothing) {
  obs::TimelineRing ring(0);
  ring.push(event_with_points(1));
  EXPECT_TRUE(ring.events().empty());
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

// --- engine integration ------------------------------------------------

constexpr const char* kRoot = "users/victim/documents";

class ObsEngineTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  core::ScoringConfig config;
  std::unique_ptr<core::AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{17};

  void SetUp() override { config.protected_root = kRoot; }

  void attach() {
    config.union_threshold = std::min(config.union_threshold, config.score_threshold);
    engine = std::make_unique<core::AnalysisEngine>(config);
    fs.attach_filter(engine.get());
    pid = fs.register_process("suspect");
  }

  std::string doc(const std::string& name) {
    return std::string(kRoot) + "/" + name;
  }

  void put_prose(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, to_bytes(synth_prose(rng, n))).is_ok());
  }

  /// Encrypt files in place until the engine suspends the process.
  void encrypt_until_stopped(std::size_t files) {
    for (std::size_t i = 0; i < files; ++i) {
      const std::string path = doc("f" + std::to_string(i) + ".txt");
      auto data = fs.read_file(pid, path);
      if (!data) break;
      const Bytes ct = crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12),
                                                ByteView(data.value()));
      if (!fs.write_file(pid, path, ByteView(ct)).is_ok()) break;
    }
  }

  void seed_and_attack(int threshold, std::size_t files = 40) {
    config.score_threshold = threshold;
    attach();
    for (std::size_t i = 0; i < files; ++i) {
      put_prose(doc("f" + std::to_string(i) + ".txt"), 15'000);
    }
    encrypt_until_stopped(files);
  }
};

TEST_F(ObsEngineTest, ExplainSuspendedEndsWithSuspensionVerdict) {
  seed_and_attack(/*threshold=*/100);
  ASSERT_TRUE(engine->is_suspended(pid));

  const obs::ForensicTimeline timeline = engine->explain(pid);
  EXPECT_EQ(timeline.pid, pid);
  EXPECT_TRUE(timeline.suspended);
  EXPECT_GE(timeline.final_score, timeline.threshold);
  ASSERT_FALSE(timeline.events.empty());
  const obs::TimelineEvent& last = timeline.events.back();
  EXPECT_EQ(last.kind, obs::TimelineEventKind::suspension);
  EXPECT_EQ(last.score_after, timeline.final_score);
  EXPECT_GE(last.score_after, static_cast<int>(last.detail));  // threshold

  // Score deltas are internally consistent: after = before + points.
  for (const obs::TimelineEvent& ev : timeline.events) {
    EXPECT_EQ(ev.score_after, ev.score_before + ev.points);
  }
}

TEST_F(ObsEngineTest, ExplainBenignProcessHasNoVerdict) {
  config.score_threshold = 200;
  attach();
  put_prose(doc("a.txt"), 20'000);
  (void)fs.read_file(pid, doc("a.txt"));

  const obs::ForensicTimeline timeline = engine->explain(pid);
  EXPECT_FALSE(timeline.suspended);
  for (const obs::TimelineEvent& ev : timeline.events) {
    EXPECT_NE(ev.kind, obs::TimelineEventKind::suspension);
  }

  // A never-seen pid yields an empty timeline at the default threshold.
  const obs::ForensicTimeline unknown = engine->explain(4242);
  EXPECT_FALSE(unknown.suspended);
  EXPECT_TRUE(unknown.events.empty());
  EXPECT_EQ(unknown.threshold, config.score_threshold);
}

TEST_F(ObsEngineTest, TimelineCapacityBoundsTheRing) {
  config.timeline_capacity = 4;
  seed_and_attack(/*threshold=*/100);

  const obs::ForensicTimeline timeline = engine->explain(pid);
  EXPECT_LE(timeline.events.size(), 4u);
  EXPECT_EQ(timeline.events_dropped,
            timeline.events_recorded - timeline.events.size());
  // Eviction is oldest-first, so the terminal verdict always survives.
  ASSERT_FALSE(timeline.events.empty());
  EXPECT_EQ(timeline.events.back().kind, obs::TimelineEventKind::suspension);
}

TEST_F(ObsEngineTest, RecordTimelineOffDisablesForensicEvents) {
  config.record_timeline = false;
  seed_and_attack(/*threshold=*/100);
  ASSERT_TRUE(engine->is_suspended(pid));

  const obs::ForensicTimeline timeline = engine->explain(pid);
  EXPECT_TRUE(timeline.suspended);  // verdict state is still reported
  EXPECT_TRUE(timeline.events.empty());
  EXPECT_EQ(timeline.events_recorded, 0u);
}

TEST_F(ObsEngineTest, EngineCountersMatchReportAndOps) {
  SKIP_WITHOUT_METRICS();
  seed_and_attack(/*threshold=*/150);
  const core::EngineSnapshot snap = engine->snapshot();
  const core::ProcessReport* report = snap.find(pid);
  ASSERT_NE(report, nullptr);

  const obs::MetricsSnapshot& metrics = snap.metrics;
  ASSERT_NE(metrics.counter("ops_observed_total"), nullptr);
  EXPECT_EQ(metrics.counter("ops_observed_total")->value, snap.observed_ops);
  EXPECT_EQ(metrics.counter("suspensions_total")->value,
            report->suspended ? 1u : 0u);
  EXPECT_EQ(metrics.counter("indicator_events_total.entropy_delta")->value,
            report->entropy_events);
  EXPECT_EQ(metrics.counter("indicator_events_total.type_change")->value,
            report->type_change_events);
  EXPECT_EQ(metrics.counter("indicator_events_total.similarity_drop")->value,
            report->similarity_drop_events);
  // The snapshot embeds the process's forensic record too.
  EXPECT_EQ(report->forensic.suspended, report->suspended);
  EXPECT_FALSE(report->forensic.events.empty());

  // Stage histograms saw the work the run implies: every in-place
  // rewrite sniffs types and digests content.
  const obs::HistogramSnapshot* magic = metrics.histogram("stage_latency_us.magic_sniff");
  ASSERT_NE(magic, nullptr);
  EXPECT_GT(magic->count, 0u);
  const obs::HistogramSnapshot* dispatch =
      metrics.histogram("stage_latency_us.filter_dispatch");
  ASSERT_NE(dispatch, nullptr);
  EXPECT_GT(dispatch->count, 0u);
  EXPECT_EQ(metrics.counter("similarity_digests_total")->value,
            metrics.histogram("stage_latency_us.sdhash_digest")->count);
}

TEST_F(ObsEngineTest, DeniedOpsAreCounted) {
  seed_and_attack(/*threshold=*/100);
  ASSERT_TRUE(engine->is_suspended(pid));
  const std::uint64_t denied_before =
      engine->metrics_snapshot().counter("ops_denied_total")->value;
  EXPECT_EQ(fs.read_file(pid, doc("f0.txt")).code(), Errc::access_denied);
  EXPECT_EQ(fs.read_file(pid, doc("f0.txt")).code(), Errc::access_denied);
  const std::uint64_t denied_after =
      engine->metrics_snapshot().counter("ops_denied_total")->value;
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(denied_after, denied_before + 2);
  } else {
    EXPECT_EQ(denied_after, 0u);  // denial enforced above; count compiled out
  }
}

// --- determinism across job counts -------------------------------------

TEST(ObsDeterminism, CampaignMetricsIdenticalAtAnyJobCount) {
  corpus::CorpusSpec spec = harness::small_corpus_spec(180, 20);
  spec.compute_hashes = false;
  const harness::Environment env = harness::make_environment(spec, 77);

  std::vector<sim::SampleSpec> all = sim::table1_samples(1);
  std::vector<sim::SampleSpec> specs;
  const std::size_t stride = all.size() / 6;
  for (std::size_t i = 0; i < 6; ++i) specs.push_back(all[i * stride]);

  harness::RunnerOptions serial;
  serial.jobs = 1;
  harness::RunnerOptions parallel;
  parallel.jobs = 8;
  const auto r1 = harness::run_campaign_parallel(env, specs, {}, serial);
  const auto r8 = harness::run_campaign_parallel(env, specs, {}, parallel);

  const obs::MetricsSnapshot m1 = harness::merged_metrics(r1);
  const obs::MetricsSnapshot m8 = harness::merged_metrics(r8);

  // Counters are fully deterministic: every count depends only on the
  // trial's own (seeded) operations, never on scheduling.
  ASSERT_EQ(m1.counters.size(), m8.counters.size());
  for (const obs::CounterSnapshot& c : m1.counters) {
    const obs::CounterSnapshot* other = m8.counter(c.name);
    ASSERT_NE(other, nullptr) << c.name;
    EXPECT_EQ(c.value, other->value) << c.name;
  }
  // Histogram *sample counts* are deterministic too (how many times each
  // stage ran); the bucket spread is wall-clock and is not compared.
  ASSERT_EQ(m1.histograms.size(), m8.histograms.size());
  for (const obs::HistogramSnapshot& h : m1.histograms) {
    const obs::HistogramSnapshot* other = m8.histogram(h.name);
    ASSERT_NE(other, nullptr) << h.name;
    EXPECT_EQ(h.count, other->count) << h.name;
  }
  // Gauges describing per-trial state are deterministic; the shared
  // digest-cache gauges are process-wide and grow across runs, so they
  // are exempt from the contract.
  for (const obs::GaugeSnapshot& g : m1.gauges) {
    if (g.name.rfind("digest_cache_", 0) == 0) continue;
    const obs::GaugeSnapshot* other = m8.gauge(g.name);
    ASSERT_NE(other, nullptr) << g.name;
    EXPECT_EQ(g.value, other->value) << g.name;
  }
}

}  // namespace
}  // namespace cryptodrop
