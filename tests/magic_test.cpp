// Tests for magic-number file-type identification, including the
// round-trip property against every corpus generator (the File Type
// Changes indicator depends on this mapping being stable).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "corpus/generators.hpp"
#include "crypto/chacha20.hpp"
#include "magic/magic.hpp"

namespace cryptodrop::magic {
namespace {

TEST(Magic, EmptyBuffer) {
  EXPECT_EQ(identify(ByteView()), TypeId::empty);
}

TEST(Magic, AsciiText) {
  const Bytes b = to_bytes("Just a plain note.\nSecond line.\n");
  EXPECT_EQ(identify(ByteView(b)), TypeId::ascii_text);
}

TEST(Magic, Utf8Text) {
  const Bytes b = to_bytes("Grü\xc3\x9f" "e aus M\xc3\xbcnchen");
  EXPECT_EQ(identify(ByteView(b)), TypeId::utf8_text);
}

TEST(Magic, NulByteIsNotText) {
  Bytes b = to_bytes("looks like text");
  b.push_back(0);
  append(b, std::string_view("but has a nul"));
  EXPECT_NE(identify(ByteView(b)), TypeId::ascii_text);
}

TEST(Magic, PdfSignature) {
  const Bytes b = to_bytes("%PDF-1.7\nrest of file");
  EXPECT_EQ(identify(ByteView(b)), TypeId::pdf);
}

TEST(Magic, HtmlDetectedDespiteTextHeuristic) {
  const Bytes b = to_bytes("<!DOCTYPE html><html><body>hi</body></html>");
  EXPECT_EQ(identify(ByteView(b)), TypeId::html);
}

TEST(Magic, XmlProlog) {
  const Bytes b = to_bytes("<?xml version=\"1.0\"?><root/>");
  EXPECT_EQ(identify(ByteView(b)), TypeId::xml);
}

TEST(Magic, ZipVsOoxmlDisambiguation) {
  Bytes plain_zip = to_bytes(std::string("PK\x03\x04", 4));
  append(plain_zip, std::string_view("randomname.dat payload here"));
  EXPECT_EQ(identify(ByteView(plain_zip)), TypeId::zip_archive);

  Bytes docx = to_bytes(std::string("PK\x03\x04", 4));
  append(docx, std::string_view("xxxx word/document.xml more bytes"));
  EXPECT_EQ(identify(ByteView(docx)), TypeId::ms_word_2007);

  Bytes xlsx = to_bytes(std::string("PK\x03\x04", 4));
  append(xlsx, std::string_view("xxxx xl/workbook.xml more bytes"));
  EXPECT_EQ(identify(ByteView(xlsx)), TypeId::ms_excel_2007);

  Bytes pptx = to_bytes(std::string("PK\x03\x04", 4));
  append(pptx, std::string_view("xxxx ppt/slides/slide1.xml"));
  EXPECT_EQ(identify(ByteView(pptx)), TypeId::ms_powerpoint_2007);

  Bytes odt = to_bytes(std::string("PK\x03\x04", 4));
  append(odt, std::string_view("mimetypeapplication/vnd.oasis.opendocument.text"));
  EXPECT_EQ(identify(ByteView(odt)), TypeId::opendocument_text);
}

TEST(Magic, OleCompound) {
  Bytes b = {0xd0, 0xcf, 0x11, 0xe0, 0xa1, 0xb1, 0x1a, 0xe1};
  b.resize(512, 0);
  EXPECT_EQ(identify(ByteView(b)), TypeId::ole_compound);
}

TEST(Magic, Jpeg) {
  Bytes b = {0xff, 0xd8, 0xff, 0xe0};
  b.resize(64, 0x10);
  EXPECT_EQ(identify(ByteView(b)), TypeId::jpeg);
}

TEST(Magic, Png) {
  Bytes b = {0x89, 'P', 'N', 'G', '\r', '\n', 0x1a, '\n'};
  b.resize(64, 0);
  EXPECT_EQ(identify(ByteView(b)), TypeId::png);
}

TEST(Magic, Mp3WithId3AndWithFrameSync) {
  Bytes id3 = to_bytes("ID3");
  id3.resize(64, 0);
  EXPECT_EQ(identify(ByteView(id3)), TypeId::mp3);

  Bytes sync = {0xff, 0xfb, 0x90, 0x00};
  sync.resize(64, 0x22);
  EXPECT_EQ(identify(ByteView(sync)), TypeId::mp3);
}

TEST(Magic, WavNeedsBothRiffAndWave) {
  Bytes wav = to_bytes("RIFFxxxxWAVEfmt ");
  EXPECT_EQ(identify(ByteView(wav)), TypeId::wav);
  Bytes riff_only = to_bytes("RIFFxxxxAVI LIST");
  EXPECT_NE(identify(ByteView(riff_only)), TypeId::wav);
}

TEST(Magic, CiphertextIsHighEntropyData) {
  const Bytes plain(50000, 'A');
  const Bytes ct = crypto::chacha20_encrypt(to_bytes("k"), to_bytes("n"), plain);
  EXPECT_EQ(identify(ByteView(ct)), TypeId::high_entropy_data);
}

TEST(Magic, SmallCiphertextIsStillNotItsOriginalType) {
  // A tiny encrypted blob can't reach the 7.2 bits/byte bar, but it must
  // at least stop being "text".
  const Bytes plain = to_bytes("short note body here");
  const Bytes ct = crypto::chacha20_encrypt(to_bytes("k"), to_bytes("n"), plain);
  const TypeId id = identify(ByteView(ct));
  EXPECT_TRUE(id == TypeId::unknown_data || id == TypeId::high_entropy_data)
      << type_name(id);
}

TEST(Magic, LowEntropyBinaryIsData) {
  Bytes b;
  for (int i = 0; i < 1000; ++i) {
    b.push_back(static_cast<std::uint8_t>(i % 7));
    b.push_back(0x80);  // non-text, low entropy
  }
  EXPECT_EQ(identify(ByteView(b)), TypeId::unknown_data);
}

TEST(Magic, TypeNamesAreNonEmptyAndDistinctish) {
  EXPECT_EQ(type_name(TypeId::pdf), "PDF document");
  EXPECT_EQ(type_name(TypeId::unknown_data), "data");
  EXPECT_FALSE(type_name(TypeId::sevenzip).empty());
}

TEST(Magic, HighEntropyTypeClassification) {
  EXPECT_TRUE(is_high_entropy_type(TypeId::pdf));
  EXPECT_TRUE(is_high_entropy_type(TypeId::ms_word_2007));
  EXPECT_TRUE(is_high_entropy_type(TypeId::jpeg));
  EXPECT_FALSE(is_high_entropy_type(TypeId::ascii_text));
  EXPECT_FALSE(is_high_entropy_type(TypeId::bmp));
  EXPECT_FALSE(is_high_entropy_type(TypeId::wav));
}

// --- round-trip: every corpus generator identifies as itself ------------

struct KindExpectation {
  corpus::FileKind kind;
  std::vector<TypeId> accepted;
};

class GeneratorIdentifyTest : public ::testing::TestWithParam<KindExpectation> {};

TEST_P(GeneratorIdentifyTest, GeneratedContentIdentifiesAsItsType) {
  const auto& param = GetParam();
  Rng rng(seed_from_string(std::string(corpus::kind_extension(param.kind))));
  for (std::size_t size : {1024u, 8192u, 100000u}) {
    const Bytes content = corpus::generate_content(param.kind, size, rng);
    const TypeId id = identify(ByteView(content));
    EXPECT_TRUE(std::find(param.accepted.begin(), param.accepted.end(), id) !=
                param.accepted.end())
        << "kind " << corpus::kind_extension(param.kind) << " size " << size
        << " identified as " << type_name(id);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, GeneratorIdentifyTest,
    ::testing::Values(
        KindExpectation{corpus::FileKind::txt, {TypeId::ascii_text}},
        KindExpectation{corpus::FileKind::md, {TypeId::ascii_text}},
        KindExpectation{corpus::FileKind::csv, {TypeId::ascii_text}},
        KindExpectation{corpus::FileKind::log, {TypeId::ascii_text}},
        KindExpectation{corpus::FileKind::html, {TypeId::html}},
        KindExpectation{corpus::FileKind::xml, {TypeId::xml}},
        KindExpectation{corpus::FileKind::rtf, {TypeId::rtf}},
        KindExpectation{corpus::FileKind::ps, {TypeId::postscript}},
        KindExpectation{corpus::FileKind::pdf, {TypeId::pdf}},
        KindExpectation{corpus::FileKind::docx, {TypeId::ms_word_2007}},
        KindExpectation{corpus::FileKind::xlsx, {TypeId::ms_excel_2007}},
        KindExpectation{corpus::FileKind::pptx, {TypeId::ms_powerpoint_2007}},
        KindExpectation{corpus::FileKind::odt, {TypeId::opendocument_text}},
        KindExpectation{corpus::FileKind::doc, {TypeId::ole_compound}},
        KindExpectation{corpus::FileKind::xls, {TypeId::ole_compound}},
        KindExpectation{corpus::FileKind::ppt, {TypeId::ole_compound}},
        KindExpectation{corpus::FileKind::jpg, {TypeId::jpeg}},
        KindExpectation{corpus::FileKind::png, {TypeId::png}},
        KindExpectation{corpus::FileKind::gif, {TypeId::gif}},
        KindExpectation{corpus::FileKind::bmp, {TypeId::bmp}},
        KindExpectation{corpus::FileKind::mp3, {TypeId::mp3}},
        KindExpectation{corpus::FileKind::wav, {TypeId::wav}},
        KindExpectation{corpus::FileKind::m4a, {TypeId::m4a}},
        KindExpectation{corpus::FileKind::flac, {TypeId::flac}},
        KindExpectation{corpus::FileKind::zip, {TypeId::zip_archive}},
        KindExpectation{corpus::FileKind::gz, {TypeId::gzip}}),
    [](const ::testing::TestParamInfo<KindExpectation>& info) {
      return std::string(corpus::kind_extension(info.param.kind));
    });

/// The core transformation the indicator must catch: encrypting ANY
/// generated file changes its identified type.
class EncryptionChangesTypeTest
    : public ::testing::TestWithParam<corpus::FileKind> {};

TEST_P(EncryptionChangesTypeTest, EncryptedContentChangesType) {
  Rng rng(99);
  const Bytes content = corpus::generate_content(GetParam(), 50000, rng);
  const TypeId before = identify(ByteView(content));
  const Bytes ct = crypto::chacha20_encrypt(to_bytes("key"), to_bytes("nonce"),
                                            ByteView(content));
  const TypeId after = identify(ByteView(ct));
  EXPECT_NE(before, after) << type_name(before);
  EXPECT_EQ(after, TypeId::high_entropy_data);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, EncryptionChangesTypeTest,
                         ::testing::ValuesIn(corpus::all_kinds()),
                         [](const ::testing::TestParamInfo<corpus::FileKind>& info) {
                           return std::string(corpus::kind_extension(info.param));
                         });

}  // namespace
}  // namespace cryptodrop::magic
