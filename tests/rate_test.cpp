// Tests for the virtual clock and the §V-F burst-rate indicator
// extension (off by default; the paper flags it as future work and warns
// about the slow-attacker evasion, both of which are covered here).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/recording_filter.hpp"

namespace cryptodrop {
namespace {

constexpr const char* kRoot = "users/victim/documents";

// --- virtual clock ------------------------------------------------------

TEST(VirtualClock, StartsAtZeroAndAdvances) {
  vfs::FileSystem fs;
  EXPECT_EQ(fs.now_micros(), 0u);
  fs.advance_time(1000);
  EXPECT_EQ(fs.now_micros(), 1000u);
}

TEST(VirtualClock, EveryFilteredOpCosts) {
  vfs::FileSystem fs;
  const vfs::ProcessId pid = fs.register_process("p");
  const std::uint64_t before = fs.now_micros();
  ASSERT_TRUE(fs.write_file(pid, "a.txt", to_bytes("x")).is_ok());
  // write_file = open + write + close = 3 ops.
  EXPECT_EQ(fs.now_micros(), before + 3 * vfs::FileSystem::kOpCostMicros);
}

TEST(VirtualClock, EventsCarryTimestamps) {
  vfs::FileSystem fs;
  vfs::RecordingFilter recorder;
  struct TimestampFilter : vfs::Filter {
    std::vector<std::uint64_t> stamps;
    vfs::Verdict pre_operation(const vfs::OperationEvent& event) override {
      stamps.push_back(event.timestamp);
      return vfs::Verdict::allow;
    }
  } filter;
  fs.attach_filter(&filter);
  const vfs::ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.write_file(pid, "a.txt", to_bytes("x")).is_ok());
  fs.advance_time(5000);
  ASSERT_TRUE(fs.write_file(pid, "b.txt", to_bytes("y")).is_ok());
  ASSERT_GE(filter.stamps.size(), 6u);
  EXPECT_GT(filter.stamps[3], filter.stamps[2] + 4000);  // the think gap
  for (std::size_t i = 1; i < filter.stamps.size(); ++i) {
    EXPECT_GT(filter.stamps[i], filter.stamps[i - 1]);
  }
  fs.detach_filter(&filter);
}

// --- burst-rate indicator ----------------------------------------------

class RateTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  core::ScoringConfig config;
  std::unique_ptr<core::AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{17};

  void SetUp() override {
    config.protected_root = kRoot;
    config.score_threshold = 1000000;
    config.union_threshold = 1000000;
    config.enable_rate_indicator = true;
    config.rate_window_micros = 10'000'000;
    config.rate_min_files = 10;
  }

  void attach() {
    engine = std::make_unique<core::AnalysisEngine>(config);
    fs.attach_filter(engine.get());
    pid = fs.register_process("subject");
  }

  std::string doc(int i) { return std::string(kRoot) + "/f" + std::to_string(i) + ".txt"; }

  void put_files(int n) {
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(fs.put_file_raw(doc(i), to_bytes(synth_prose(rng, 2000))).is_ok());
    }
  }

  void modify(int i) {
    ASSERT_TRUE(fs.write_file(pid, doc(i), to_bytes(synth_prose(rng, 2000))).is_ok());
  }
};

TEST_F(RateTest, OffByDefault) {
  core::ScoringConfig defaults;
  EXPECT_FALSE(defaults.enable_rate_indicator);
}

TEST_F(RateTest, BurstModifierAccumulatesRatePoints) {
  attach();
  put_files(30);
  for (int i = 0; i < 30; ++i) modify(i);  // back-to-back: all in window
  const core::ProcessReport report = engine->process_report(pid);
  // Files 10..29 each scored as they joined the bursting window.
  EXPECT_EQ(report.rate_events, 21u);
}

TEST_F(RateTest, SlowAttackerSlipsUnderTheWindow) {
  // §V-F: "it can change its rate of attack to overcome the window".
  attach();
  put_files(30);
  for (int i = 0; i < 30; ++i) {
    fs.advance_time(2'000'000);  // 2 s between files: < 10 files per 10 s
    modify(i);
  }
  EXPECT_EQ(engine->process_report(pid).rate_events, 0u);
}

TEST_F(RateTest, ChunkedWritesToOneFileDoNotCount) {
  attach();
  put_files(1);
  auto h = fs.open(pid, doc(0), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(512)).is_ok());
  }
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->process_report(pid).rate_events, 0u);
}

TEST_F(RateTest, DeletionsCountTowardTheBurst) {
  attach();
  put_files(20);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(fs.remove(pid, doc(i)).is_ok());
  }
  EXPECT_GT(engine->process_report(pid).rate_events, 0u);
}

TEST_F(RateTest, DisabledFlagSilencesIt) {
  config.enable_rate_indicator = false;
  attach();
  put_files(30);
  for (int i = 0; i < 30; ++i) modify(i);
  EXPECT_EQ(engine->process_report(pid).rate_events, 0u);
}

TEST_F(RateTest, WindowExpiryResetsTheCount) {
  attach();
  put_files(30);
  for (int i = 0; i < 8; ++i) modify(i);   // below threshold
  fs.advance_time(20'000'000);             // window fully drains
  for (int i = 8; i < 16; ++i) modify(i);  // below threshold again
  EXPECT_EQ(engine->process_report(pid).rate_events, 0u);
}

// --- end-to-end with the simulators ---------------------------------------

class RateIntegrationTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 600;
    spec.total_dirs = 60;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 808));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }
};

harness::Environment* RateIntegrationTest::env = nullptr;

TEST_F(RateIntegrationTest, RateIndicatorAcceleratesBulkEncryptors) {
  sim::SampleSpec ctb;
  ctb.family = "CTB-Locker";
  ctb.behavior = sim::BehaviorClass::B;
  ctb.profile = sim::family_profile("CTB-Locker", sim::BehaviorClass::B);
  ctb.seed = 5;
  core::ScoringConfig with_rate;
  with_rate.enable_rate_indicator = true;
  const auto fast = harness::run_ransomware_sample(*env, ctb, with_rate);
  const auto stock = harness::run_ransomware_sample(*env, ctb, core::ScoringConfig{});
  EXPECT_TRUE(fast.detected);
  EXPECT_LE(fast.files_lost, stock.files_lost);
}

TEST_F(RateIntegrationTest, PacedBenignAppsDoNotTripTheRateIndicator) {
  core::ScoringConfig with_rate;
  with_rate.enable_rate_indicator = true;
  std::size_t false_positives = 0;
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    const auto r = harness::run_benign_workload(*env, workload, with_rate, 21);
    if (r.detected && !r.expected_false_positive) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0u);
}

TEST_F(RateIntegrationTest, SlowedRansomwareEvadesRateButNotPrimaries) {
  sim::SampleSpec spec;
  spec.family = "Evader";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  spec.profile.evasion.think_micros_per_file = 3'000'000;  // 3 s per file
  spec.seed = 6;
  core::ScoringConfig with_rate;
  with_rate.enable_rate_indicator = true;
  const auto r = harness::run_ransomware_sample(*env, spec, with_rate);
  EXPECT_EQ(r.report.rate_events, 0u);  // the §V-F evasion works...
  EXPECT_TRUE(r.detected);              // ...and buys the attacker nothing.
}

}  // namespace
}  // namespace cryptodrop
