// Causal span tracing (obs/span.hpp + obs/trace_export.hpp): span
// identity and nesting, record-time sampling, ring spill, the
// determinism contract at any job count, Chrome trace-event export
// round-trips, and the critical-path analyzer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "harness/chaos.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "obs/span.hpp"
#include "obs/trace_export.hpp"

namespace cryptodrop::obs {
namespace {

using harness::Environment;

/// The deterministic projection of one span: everything the contract
/// covers (span_id, parent_id, pid, name, args), nothing it excludes
/// (tid, seq, start_ns, dur_ns).
std::string deterministic_signature(const SpanRecord& record) {
  std::string sig = std::to_string(record.span_id) + "|" +
                    std::to_string(record.parent_id) + "|" +
                    std::to_string(record.pid) + "|" + std::string(record.name);
  for (const SpanArg& arg : record.args) {
    sig += "|" + arg.key + "=";
    sig += arg.numeric ? std::to_string(arg.num) : arg.str;
  }
  return sig;
}

std::vector<std::string> sorted_signatures(const SpanSnapshot& snapshot) {
  std::vector<std::string> sigs;
  sigs.reserve(snapshot.spans.size());
  for (const SpanRecord& record : snapshot.spans) {
    sigs.push_back(deterministic_signature(record));
  }
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

TEST(SpanId, PacksPidOpIndexAndSerial) {
  const std::uint64_t id = SpanTracer::make_span_id(42, 1234567, 9);
  EXPECT_EQ((id >> 50) & 0x3FFF, 42u);
  EXPECT_EQ((id >> 12) & 0x3FFFFFFFFFULL, 1234567u);
  EXPECT_EQ(id & 0xFFF, 9u);
  // Distinct coordinates → distinct ids.
  EXPECT_NE(SpanTracer::make_span_id(1, 1, 0), SpanTracer::make_span_id(1, 1, 1));
  EXPECT_NE(SpanTracer::make_span_id(1, 1, 0), SpanTracer::make_span_id(1, 2, 0));
  EXPECT_NE(SpanTracer::make_span_id(1, 1, 0), SpanTracer::make_span_id(2, 1, 0));
}

TEST(SpanTracer, ScopedSpansNestAndRecordParentage) {
  SpanTracer tracer(TraceOptions{.enabled = true});
  {
    ScopedSpan root(&tracer, span_name::kDispatch, /*pid=*/3, /*op_index=*/7);
    root.arg("op", "write");
    {
      ScopedSpan pre(span_name::kFilterPre);
      pre.arg("filter", "analysis_engine");
      ScopedSpan entropy(span_name::kEntropy);
      entropy.arg("bytes", 4096.0);
    }
    ScopedSpan post(span_name::kFilterPost);
  }
  const SpanSnapshot snap = tracer.snapshot();
  if (!kMetricsEnabled) {
    EXPECT_TRUE(snap.spans.empty());
    return;
  }
  ASSERT_EQ(snap.spans.size(), 4u);
  // (tid, seq) sort puts the one thread's spans in start order.
  EXPECT_EQ(snap.spans[0].name, span_name::kDispatch);
  EXPECT_EQ(snap.spans[1].name, span_name::kFilterPre);
  EXPECT_EQ(snap.spans[2].name, span_name::kEntropy);
  EXPECT_EQ(snap.spans[3].name, span_name::kFilterPost);

  const SpanRecord& root = snap.spans[0];
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.span_id, SpanTracer::make_span_id(3, 7, 0));
  EXPECT_EQ(snap.spans[1].parent_id, root.span_id);
  EXPECT_EQ(snap.spans[2].parent_id, snap.spans[1].span_id);  // entropy under pre
  EXPECT_EQ(snap.spans[3].parent_id, root.span_id);
  // Child serials are dense per op, in open order.
  EXPECT_EQ(snap.spans[1].span_id & 0xFFF, 1u);
  EXPECT_EQ(snap.spans[2].span_id & 0xFFF, 2u);
  EXPECT_EQ(snap.spans[3].span_id & 0xFFF, 3u);
  for (const SpanRecord& r : snap.spans) EXPECT_EQ(r.pid, 3u);
  ASSERT_EQ(snap.spans[2].args.size(), 1u);
  EXPECT_TRUE(snap.spans[2].args[0].numeric);
  EXPECT_DOUBLE_EQ(snap.spans[2].args[0].num, 4096.0);
}

TEST(SpanTracer, ChildSpanWithoutRootIsInert) {
  SpanTracer tracer(TraceOptions{.enabled = true});
  {
    ScopedSpan orphan(span_name::kEntropy);  // no current span on this thread
    EXPECT_FALSE(orphan.active());
  }
  EXPECT_TRUE(tracer.snapshot().spans.empty());
}

TEST(SpanTracer, SamplingKeepsOneInNAndForcedPidsKeepAll) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceOptions options;
  options.enabled = true;
  options.sample_every = 4;
  SpanTracer tracer(options);

  std::size_t kept = 0;
  for (std::uint64_t op = 0; op < 100; ++op) {
    kept += tracer.should_sample(1, op) ? 1 : 0;
  }
  EXPECT_EQ(kept, 25u);  // exactly 1-in-4, not probabilistic

  EXPECT_FALSE(tracer.should_sample(2, 1));
  tracer.force_pid(2);
  for (std::uint64_t op = 0; op < 16; ++op) {
    EXPECT_TRUE(tracer.should_sample(2, op));  // suspension tail: keep all
  }
  EXPECT_FALSE(tracer.should_sample(3, 1));  // other pids still sampled
}

TEST(SpanTracer, RingSpillEvictsOldestAndCountsDrops) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  TraceOptions options;
  options.enabled = true;
  options.ring_capacity = 32;  // 2 records per shard
  SpanTracer tracer(options);
  constexpr std::uint64_t kSpans = 100;
  for (std::uint64_t op = 0; op < kSpans; ++op) {
    ScopedSpan root(&tracer, span_name::kDispatch, 1, op);
  }
  const SpanSnapshot snap = tracer.snapshot();
  EXPECT_EQ(snap.recorded, kSpans);
  EXPECT_EQ(snap.dropped, kSpans - snap.spans.size());
  EXPECT_GT(snap.dropped, 0u);
  EXPECT_LE(snap.spans.size(), options.ring_capacity);
  // One thread fills one shard; the survivors are the newest records.
  for (const SpanRecord& r : snap.spans) {
    EXPECT_GE((r.span_id >> 12) & 0x3FFFFFFFFFULL, kSpans - options.ring_capacity);
  }
}

class SpanHarnessTest : public ::testing::Test {
 protected:
  static Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec = harness::small_corpus_spec(220, 24);
    spec.compute_hashes = false;
    env = new Environment(harness::make_environment(spec, 321));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  static std::vector<sim::SampleSpec> some_specs(std::size_t n) {
    std::vector<sim::SampleSpec> all = sim::table1_samples(1);
    std::vector<sim::SampleSpec> picked;
    const std::size_t stride = all.size() / n;
    for (std::size_t i = 0; i < n; ++i) picked.push_back(all[i * stride]);
    return picked;
  }
};

Environment* SpanHarnessTest::env = nullptr;

TEST_F(SpanHarnessTest, SpanIdentityIsBitIdenticalAtAnyJobCount) {
  harness::RunnerOptions serial;
  serial.jobs = 1;
  serial.trace.enabled = true;
  serial.trace.sample_every = 4;
  harness::RunnerOptions pooled = serial;
  pooled.jobs = 8;

  const auto specs = some_specs(8);
  const auto a =
      harness::run_campaign_parallel(*env, specs, core::ScoringConfig{}, serial);
  const auto b =
      harness::run_campaign_parallel(*env, specs, core::ScoringConfig{}, pooled);
  ASSERT_EQ(a.size(), b.size());
  std::size_t total_spans = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].trace.spans.size(), b[i].trace.spans.size());
    EXPECT_EQ(a[i].trace.recorded, b[i].trace.recorded);
    EXPECT_EQ(sorted_signatures(a[i].trace), sorted_signatures(b[i].trace))
        << "trial " << i << " (" << a[i].family << ")";
    total_spans += a[i].trace.spans.size();
  }
  if (kMetricsEnabled) {
    EXPECT_GT(total_spans, 0u);
  } else {
    EXPECT_EQ(total_spans, 0u);  // empty-but-valid under NO_METRICS
  }
}

TEST_F(SpanHarnessTest, TracedRunNestsEngineStagesUnderFilterSpans) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  obs::TraceOptions trace;
  trace.enabled = true;
  const auto specs = some_specs(2);
  const auto r = harness::run_ransomware_sample_filtered(
      *env, specs[0], core::ScoringConfig{}, nullptr, trace);
  ASSERT_FALSE(r.trace.spans.empty());

  std::size_t engine_stages = 0;
  bool saw_verdict = false;
  for (const SpanRecord& record : r.trace.spans) {
    if (record.parent_id == 0) {
      EXPECT_EQ(record.name, span_name::kDispatch);
      continue;
    }
    // Every non-root span hangs off a retained span of the same op.
    const auto parent = std::find_if(
        r.trace.spans.begin(), r.trace.spans.end(),
        [&](const SpanRecord& p) { return p.span_id == record.parent_id; });
    ASSERT_NE(parent, r.trace.spans.end()) << record.name;
    if (record.name.starts_with("engine.")) {
      ++engine_stages;
      EXPECT_TRUE(parent->name == span_name::kFilterPre ||
                  parent->name == span_name::kFilterPost ||
                  parent->name.starts_with("engine."))
          << record.name << " under " << parent->name;
    }
    if (record.name == span_name::kVerdict) saw_verdict = true;
  }
  EXPECT_GT(engine_stages, 0u);
  EXPECT_EQ(saw_verdict, r.detected);
}

TEST_F(SpanHarnessTest, FaultFilterAppearsAsNamedFilterSpan) {
  if (!kMetricsEnabled) GTEST_SKIP() << "tracing compiled out";
  harness::FaultCampaignOptions faults;
  faults.plan = vfs::FaultPlan::uniform(0.05, 99);
  obs::TraceOptions trace;
  trace.enabled = true;
  const auto r = harness::run_ransomware_sample_faulted(
      *env, some_specs(2)[1], core::ScoringConfig{}, faults, trace);
  bool saw_fault_filter = false;
  for (const SpanRecord& record : r.trace.spans) {
    for (const SpanArg& arg : record.args) {
      if (arg.key == "filter" && arg.str == "fault_injection") {
        saw_fault_filter = true;
      }
    }
  }
  EXPECT_TRUE(saw_fault_filter);
}

TEST_F(SpanHarnessTest, TraceJsonRoundTripsAndValidates) {
  harness::RunnerOptions options;
  options.jobs = 2;
  options.trace.enabled = true;
  const auto results = harness::run_campaign_parallel(
      *env, some_specs(3), core::ScoringConfig{}, options);
  const std::string text = harness::trace_report(results).to_string();

  const Result<std::vector<TraceEvent>> parsed = parse_trace_events(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(validate_trace_events(parsed.value()).is_ok());

  if (!kMetricsEnabled) {
    // Empty-but-valid: a trace document with zero duration events.
    for (const TraceEvent& e : parsed.value()) EXPECT_NE(e.phase, 'B');
    return;
  }
  std::size_t begins = 0;
  std::size_t ends = 0;
  std::size_t metadata = 0;
  for (const TraceEvent& e : parsed.value()) {
    begins += e.phase == 'B' ? 1 : 0;
    ends += e.phase == 'E' ? 1 : 0;
    metadata += e.phase == 'M' ? 1 : 0;
  }
  EXPECT_GT(begins, 0u);
  EXPECT_EQ(begins, ends);
  EXPECT_GE(metadata, results.size());  // one process_name per trial pid

  const TraceReport report = analyze_trace(parsed.value(), 5);
  EXPECT_GT(report.ops, 0u);
  EXPECT_FALSE(report.stages.empty());
  EXPECT_LE(report.slowest.size(), 5u);
  EXPECT_FALSE(format_trace_report(report).empty());
}

TEST(TraceExport, EmptyTraceIsValidAndAnalyzable) {
  const std::string text = empty_trace_json().to_string();
  const Result<std::vector<TraceEvent>> parsed = parse_trace_events(text);
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed.value().empty());
  EXPECT_TRUE(validate_trace_events(parsed.value()).is_ok());
  const TraceReport report = analyze_trace(parsed.value());
  EXPECT_EQ(report.ops, 0u);
  EXPECT_FALSE(format_trace_report(report).empty());
}

TEST(TraceExport, ValidatorRejectsBrokenTraces) {
  const auto event = [](const char* name, char phase, double ts) {
    TraceEvent e;
    e.name = name;
    e.phase = phase;
    e.ts = ts;
    e.pid = 1;
    e.tid = 1;
    return e;
  };
  // ts regression within one track.
  EXPECT_FALSE(validate_trace_events(
                   {event("a", 'B', 10.0), event("a", 'E', 5.0)})
                   .is_ok());
  // E without a matching B.
  EXPECT_FALSE(validate_trace_events({event("a", 'E', 1.0)}).is_ok());
  // B/E name mismatch.
  EXPECT_FALSE(validate_trace_events(
                   {event("a", 'B', 1.0), event("b", 'E', 2.0)})
                   .is_ok());
  // Unclosed B at end of trace.
  EXPECT_FALSE(validate_trace_events({event("a", 'B', 1.0)}).is_ok());
  // The well-formed version of the same trace passes.
  EXPECT_TRUE(validate_trace_events(
                  {event("a", 'B', 1.0), event("b", 'B', 2.0),
                   event("b", 'E', 3.0), event("a", 'E', 4.0)})
                  .is_ok());
}

TEST(TraceExport, AnalyzeAttributesSelfTimeToStages) {
  const auto event = [](const char* name, char phase, double ts,
                        std::vector<std::pair<std::string, std::string>> args = {}) {
    TraceEvent e;
    e.name = name;
    e.phase = phase;
    e.ts = ts;
    e.pid = 1;
    e.tid = 1;
    e.args = std::move(args);
    return e;
  };
  // One 100us op: 30us in entropy, 50us in digest, 20us self.
  const std::vector<TraceEvent> events = {
      event("vfs.dispatch", 'B', 0.0, {{"op", "write"}, {"path", "a.txt"}}),
      event("engine.entropy", 'B', 10.0),
      event("engine.entropy", 'E', 40.0),
      event("engine.sdhash_digest", 'B', 45.0),
      event("engine.sdhash_digest", 'E', 95.0),
      event("vfs.dispatch", 'E', 100.0),
  };
  ASSERT_TRUE(validate_trace_events(events).is_ok());
  const TraceReport report = analyze_trace(events, 10);
  EXPECT_EQ(report.ops, 1u);
  EXPECT_DOUBLE_EQ(report.total_self_us, 100.0);

  const auto stage = [&](const std::string& name) -> const StageCost& {
    const auto it = std::find_if(report.stages.begin(), report.stages.end(),
                                 [&](const StageCost& s) { return s.name == name; });
    EXPECT_NE(it, report.stages.end()) << name;
    return *it;
  };
  EXPECT_DOUBLE_EQ(stage("vfs.dispatch").self_us, 20.0);
  EXPECT_DOUBLE_EQ(stage("vfs.dispatch").total_us, 100.0);
  EXPECT_DOUBLE_EQ(stage("engine.entropy").self_us, 30.0);
  EXPECT_DOUBLE_EQ(stage("engine.sdhash_digest").self_us, 50.0);

  // Indicator attribution: entropy → entropy_delta, digest → similarity_drop.
  const auto indicator = [&](const std::string& name) -> const IndicatorCost& {
    const auto it =
        std::find_if(report.indicators.begin(), report.indicators.end(),
                     [&](const IndicatorCost& c) { return c.indicator == name; });
    EXPECT_NE(it, report.indicators.end()) << name;
    return *it;
  };
  EXPECT_DOUBLE_EQ(indicator("entropy_delta").self_us, 30.0);
  EXPECT_DOUBLE_EQ(indicator("similarity_drop").self_us, 50.0);

  ASSERT_EQ(report.slowest.size(), 1u);
  EXPECT_EQ(report.slowest[0].op, "write");
  EXPECT_EQ(report.slowest[0].path, "a.txt");
  EXPECT_DOUBLE_EQ(report.slowest[0].dur_us, 100.0);
}

TEST(TraceExport, KnownSpanNamesMatchesSchemaOrder) {
  const std::vector<std::string_view> names = known_span_names();
  ASSERT_EQ(names.size(), 12u);
  EXPECT_EQ(names.front(), span_name::kDispatch);
  EXPECT_EQ(names.back(), span_name::kDaemonExecute);
  // No duplicates.
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = i + 1; j < names.size(); ++j) {
      EXPECT_NE(names[i], names[j]);
    }
  }
}

}  // namespace
}  // namespace cryptodrop::obs
