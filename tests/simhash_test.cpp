// Tests for the similarity digest — the contract the paper relies on:
// self-similarity ~100, ciphertext vs. plaintext ~0, no digest under
// 512 bytes, robustness to edits and shifts.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "corpus/generators.hpp"
#include "crypto/chacha20.hpp"
#include "simhash/similarity.hpp"

namespace cryptodrop::simhash {
namespace {

Bytes prose(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  return to_bytes(synth_prose(rng, n));
}

TEST(Simhash, SelfComparisonIsHundred) {
  const Bytes data = prose(1, 20000);
  const auto digest = SimilarityDigest::compute(ByteView(data));
  ASSERT_TRUE(digest.has_value());
  EXPECT_EQ(digest->compare(*digest), 100);
}

TEST(Simhash, IdenticalContentScoresHundred) {
  const Bytes a = prose(2, 50000);
  const Bytes b = a;
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_EQ(*score, 100);
}

TEST(Simhash, PlaintextVsCiphertextScoresZero) {
  // §III-B: "statistically comparable to that of two blobs of random
  // data" — the key insight the indicator is built on.
  const Bytes plain = prose(3, 100000);
  const Bytes ct = crypto::chacha20_encrypt(to_bytes("key"), to_bytes("nonce"),
                                            ByteView(plain));
  const auto score = similarity_score(ByteView(plain), ByteView(ct));
  ASSERT_TRUE(score.has_value());
  EXPECT_LE(*score, 2);
}

TEST(Simhash, TwoRandomBlobsScoreZero) {
  Rng rng(4);
  const Bytes a = rng.bytes(80000);
  const Bytes b = rng.bytes(80000);
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_LE(*score, 2);
}

TEST(Simhash, UnrelatedProseScoresLow) {
  // Different documents from the same language model share words but not
  // 64-byte feature windows.
  const auto score = similarity_score(ByteView(prose(5, 60000)),
                                      ByteView(prose(6, 60000)));
  ASSERT_TRUE(score.has_value());
  EXPECT_LE(*score, 30);
}

TEST(Simhash, SmallFilesHaveNoDigest) {
  // The sdhash limitation §V-C leans on: < 512 bytes cannot be scored.
  const Bytes small = prose(7, 511);
  EXPECT_FALSE(SimilarityDigest::compute(ByteView(small)).has_value());
  const Bytes big = prose(8, 2048);
  EXPECT_FALSE(similarity_score(ByteView(small), ByteView(big)).has_value());
  EXPECT_FALSE(similarity_score(ByteView(big), ByteView(small)).has_value());
}

TEST(Simhash, AtLeast512DigestsFine) {
  const Bytes data = prose(9, 1024);
  EXPECT_TRUE(SimilarityDigest::compute(ByteView(data)).has_value());
}

TEST(Simhash, DegenerateContentHasNoDigest) {
  // A run of one byte value offers no selectable features.
  const Bytes zeros(10000, 0x00);
  EXPECT_FALSE(SimilarityDigest::compute(ByteView(zeros)).has_value());
}

TEST(Simhash, SmallEditKeepsHighScore) {
  Bytes a = prose(10, 40000);
  Bytes b = a;
  // Flip a 100-byte region in the middle.
  for (std::size_t i = 20000; i < 20100; ++i) b[i] ^= 0x55;
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_GE(*score, 70);
}

TEST(Simhash, PrefixInsertionSurvives) {
  // Content-defined feature selection must tolerate byte shifts.
  const Bytes a = prose(11, 40000);
  Bytes b = to_bytes("INSERTED HEADER OF ODD LENGTH 37 b!");
  append(b, ByteView(a));
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_GE(*score, 70);
}

TEST(Simhash, AppendGrowthKeepsHighScore) {
  const Bytes a = prose(12, 30000);
  Bytes b = a;
  append(b, ByteView(prose(13, 6000)));
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_GE(*score, 60);
}

TEST(Simhash, HalfRewrittenScoresIntermediate) {
  Bytes a = prose(14, 40000);
  Bytes b = a;
  Rng rng(15);
  const Bytes repl = rng.bytes(20000);
  std::copy(repl.begin(), repl.end(), b.begin() + 20000);
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_GT(*score, 10);
  EXPECT_LT(*score, 95);
}

TEST(Simhash, ComparisonIsSymmetric) {
  const Bytes a = prose(16, 25000);
  Bytes b = a;
  append(b, ByteView(prose(17, 50000)));
  const auto ab = similarity_score(ByteView(a), ByteView(b));
  const auto ba = similarity_score(ByteView(b), ByteView(a));
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(*ab, *ba);
}

TEST(Simhash, GlobalBlockPermutationRetainsSubstantialSimilarity) {
  // Full reversal of 4 KiB blocks: features survive but are regrouped
  // across filter boundaries, so the score degrades — yet stays far
  // above the ciphertext "no match" bar (same behavior as sdhash).
  const Bytes a = prose(18, 64 * 1024);
  Bytes b;
  for (std::size_t block = 16; block-- > 0;) {
    append(b, ByteView(a).subspan(block * 4096, 4096));
  }
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_GE(*score, 30);
}

TEST(Simhash, LocalBlockSwapsPreserveHighSimilarity) {
  // The benign lossless-transform model (ImageMagick rotation): adjacent
  // block swaps keep every feature; some land in neighboring filters, so
  // the score sits in the "clearly related" band — an order of magnitude
  // above the engine's similarity_drop_max of 2.
  const Bytes a = prose(23, 64 * 1024);
  Bytes b;
  for (std::size_t pair = 0; pair + 1 < 16; pair += 2) {
    append(b, ByteView(a).subspan((pair + 1) * 4096, 4096));
    append(b, ByteView(a).subspan(pair * 4096, 4096));
  }
  const auto score = similarity_score(ByteView(a), ByteView(b));
  ASSERT_TRUE(score.has_value());
  EXPECT_GE(*score, 40);
}

TEST(Simhash, FilterCountGrowsWithInput) {
  const auto small = SimilarityDigest::compute(ByteView(prose(19, 2000)));
  const auto large = SimilarityDigest::compute(ByteView(prose(20, 400000)));
  ASSERT_TRUE(small.has_value());
  ASSERT_TRUE(large.has_value());
  EXPECT_GT(large->filter_count(), small->filter_count());
  EXPECT_GT(large->feature_count(), small->feature_count());
}

TEST(Simhash, DeterministicDigest) {
  const Bytes data = prose(21, 30000);
  const auto d1 = SimilarityDigest::compute(ByteView(data));
  const auto d2 = SimilarityDigest::compute(ByteView(data));
  ASSERT_TRUE(d1 && d2);
  EXPECT_EQ(d1->compare(*d2), 100);
  EXPECT_EQ(d1->feature_count(), d2->feature_count());
}

// --- parameterized: the ciphertext-vs-plaintext contract holds for every
// corpus file kind (the engine applies it to all of them) ----------------

class CiphertextDissimilarityTest
    : public ::testing::TestWithParam<corpus::FileKind> {};

TEST_P(CiphertextDissimilarityTest, EncryptedVersionScoresAtMostTwo) {
  Rng rng(22);
  const Bytes content = corpus::generate_content(GetParam(), 60000, rng);
  const auto original = SimilarityDigest::compute(ByteView(content));
  if (!original.has_value()) GTEST_SKIP() << "kind not digestible at this size";
  const Bytes ct = crypto::chacha20_encrypt(to_bytes("key"), to_bytes("nonce"),
                                            ByteView(content));
  const auto encrypted = SimilarityDigest::compute(ByteView(ct));
  ASSERT_TRUE(encrypted.has_value());
  EXPECT_LE(original->compare(*encrypted), 2)
      << corpus::kind_extension(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CiphertextDissimilarityTest,
                         ::testing::ValuesIn(corpus::all_kinds()),
                         [](const ::testing::TestParamInfo<corpus::FileKind>& info) {
                           return std::string(corpus::kind_extension(info.param));
                         });

}  // namespace
}  // namespace cryptodrop::simhash
