// Tests for the JSON builder, the machine-readable reports, multi-root
// protection, and the engine's latency self-instrumentation.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/text.hpp"
#include "harness/report.hpp"

namespace cryptodrop {
namespace {

// --- Json builder -----------------------------------------------------------

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).to_string(), "null");
  EXPECT_EQ(Json(true).to_string(), "true");
  EXPECT_EQ(Json(false).to_string(), "false");
  EXPECT_EQ(Json(42).to_string(), "42");
  EXPECT_EQ(Json(2.5).to_string(), "2.5");
  EXPECT_EQ(Json("hi").to_string(), "\"hi\"");
}

TEST(Json, IntegersPrintWithoutFraction) {
  EXPECT_EQ(Json(std::size_t{5099}).to_string(), "5099");
  EXPECT_EQ(Json(std::uint64_t{0}).to_string(), "0");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b").to_string(), "\"a\\\"b\"");
  EXPECT_EQ(Json("a\\b").to_string(), "\"a\\\\b\"");
  EXPECT_EQ(Json("line\nbreak\t!").to_string(), "\"line\\nbreak\\t!\"");
  EXPECT_EQ(Json(std::string("ctl\x01", 4)).to_string(), "\"ctl\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json j = Json::object();
  j.set("z", 1).set("a", 2);
  EXPECT_EQ(j.to_string(), "{\"z\":1,\"a\":2}");
  EXPECT_EQ(j.size(), 2u);
  EXPECT_TRUE(j.is_object());
}

TEST(Json, ArrayAndNesting) {
  Json arr = Json::array();
  arr.push(1).push("two").push(Json::object().set("three", 3.0));
  EXPECT_EQ(arr.to_string(), "[1,\"two\",{\"three\":3}]");
  EXPECT_TRUE(arr.is_array());
  EXPECT_EQ(arr.size(), 3u);
}

TEST(Json, EmptyContainers) {
  EXPECT_EQ(Json::object().to_string(), "{}");
  EXPECT_EQ(Json::array().to_string(), "[]");
}

TEST(Json, PrettyPrintingIndents) {
  Json j = Json::object();
  j.set("k", Json::array().push(1).push(2));
  const std::string pretty = j.to_pretty_string();
  EXPECT_NE(pretty.find("{\n  \"k\": [\n    1,\n    2\n  ]\n}"), std::string::npos);
}

// --- harness reports ---------------------------------------------------------

class ReportTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 300;
    spec.total_dirs = 30;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 66));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }
};

harness::Environment* ReportTest::env = nullptr;

TEST_F(ReportTest, SampleJsonHasExpectedFields) {
  sim::SampleSpec spec;
  spec.family = "Xorist";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("Xorist", sim::BehaviorClass::A);
  spec.seed = 3;
  const auto r = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  const std::string json = harness::to_json(r).to_string();
  EXPECT_NE(json.find("\"family\":\"Xorist\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"A\""), std::string::npos);
  EXPECT_NE(json.find("\"detected\":true"), std::string::npos);
  EXPECT_NE(json.find("\"indicators\":{"), std::string::npos);
}

TEST_F(ReportTest, CampaignReportAggregates) {
  std::vector<sim::SampleSpec> specs;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    sim::SampleSpec spec;
    spec.family = "Virlock";
    spec.behavior = sim::BehaviorClass::C;
    spec.profile = sim::family_profile("Virlock", sim::BehaviorClass::C);
    spec.seed = seed;
    specs.push_back(spec);
  }
  const auto results = harness::run_campaign(*env, specs, core::ScoringConfig{});
  const Json report = harness::campaign_report(*env, results);
  const std::string json = report.to_string();
  EXPECT_NE(json.find("\"samples\":4"), std::string::npos);
  EXPECT_NE(json.find("\"detection_rate\":1"), std::string::npos);
  EXPECT_NE(json.find("\"family\":\"Virlock\""), std::string::npos);
  // Per-sample records only with the flag.
  EXPECT_EQ(json.find("\"files_attacked\""), std::string::npos);
  const std::string with_samples =
      harness::campaign_report(*env, results, /*include_samples=*/true).to_string();
  EXPECT_NE(with_samples.find("\"files_attacked\""), std::string::npos);
}

TEST_F(ReportTest, BenignReportCountsFalsePositives) {
  std::vector<harness::BenignRunResult> results(3);
  results[0].app = "A";
  results[1].app = "B";
  results[1].detected = true;
  results[2].app = "C";
  const std::string json = harness::benign_report(results).to_string();
  EXPECT_NE(json.find("\"false_positives\":1"), std::string::npos);
  EXPECT_NE(json.find("\"applications\":3"), std::string::npos);
}

// --- multi-root protection -----------------------------------------------

TEST(MultiRoot, AdditionalRootsAreMonitored) {
  vfs::FileSystem fs;
  core::ScoringConfig config;
  config.protected_root = "users/victim/documents";
  config.additional_roots = {"users/victim/desktop", "users/victim/pictures"};
  config.score_threshold = 1000000;
  config.union_threshold = 1000000;
  core::AnalysisEngine engine(config);
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("p");
  Rng rng(4);

  ASSERT_TRUE(fs.put_file_raw("users/victim/desktop/todo.txt",
                              to_bytes(synth_prose(rng, 2000))).is_ok());
  ASSERT_TRUE(fs.put_file_raw("users/victim/music/song.txt",
                              to_bytes(synth_prose(rng, 2000))).is_ok());

  // Deleting under an additional root scores; an unlisted sibling doesn't.
  ASSERT_TRUE(fs.remove(pid, "users/victim/desktop/todo.txt").is_ok());
  const int after_desktop = engine.score(pid);
  EXPECT_GT(after_desktop, 0);
  ASSERT_TRUE(fs.remove(pid, "users/victim/music/song.txt").is_ok());
  EXPECT_EQ(engine.score(pid), after_desktop);
  fs.detach_filter(&engine);
}

// --- latency self-instrumentation -----------------------------------------

TEST(LatencyStats, BucketsAccumulatePerOpType) {
  vfs::FileSystem fs;
  core::AnalysisEngine engine{core::ScoringConfig{}};
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("p");
  Rng rng(5);
  ASSERT_TRUE(fs.put_file_raw("users/victim/documents/a.txt",
                              to_bytes(synth_prose(rng, 20000))).is_ok());
  ASSERT_TRUE(fs.read_file(pid, "users/victim/documents/a.txt").is_ok());
  ASSERT_TRUE(fs.write_file(pid, "users/victim/documents/a.txt",
                            rng.bytes(20000)).is_ok());

  const core::LatencyStats& stats = engine.latency_stats();
  EXPECT_GT(stats.open.count, 0u);
  EXPECT_GT(stats.read.count, 0u);
  EXPECT_GT(stats.write.count, 0u);
  EXPECT_GT(stats.close.count, 0u);
  // A modified file's close runs the digest comparison — the expensive
  // path (paper §V-H: write/rename/close carry the measurement).
  EXPECT_GT(stats.close.max_ns, stats.open.max_ns);
  EXPECT_LE(stats.open.mean_micros(), 1000.0);  // far under the paper's 1 ms
  fs.detach_filter(&engine);
}

TEST(LatencyStats, UnmonitoredOpsCostNothing) {
  vfs::FileSystem fs;
  core::AnalysisEngine engine{core::ScoringConfig{}};
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.write_file(pid, "elsewhere/x.bin", to_bytes("data")).is_ok());
  const core::LatencyStats& stats = engine.latency_stats();
  EXPECT_EQ(stats.open.count + stats.write.count + stats.close.count, 0u);
  fs.detach_filter(&engine);
}

}  // namespace
}  // namespace cryptodrop
