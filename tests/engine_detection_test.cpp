// Detection & suspension semantics: threshold crossing, the alert
// callback, op denial for suspended processes, and user resume.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "crypto/chacha20.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::core {
namespace {

constexpr const char* kRoot = "users/victim/documents";

class DetectionTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  ScoringConfig config;
  std::unique_ptr<AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  std::vector<Alert> alerts;
  Rng rng{3};

  void SetUp() override {
    config.protected_root = kRoot;
  }

  void attach() {
    // Tests here lower score_threshold freely; keep the config valid
    // (union <= base) without changing the effective threshold.
    config.union_threshold = std::min(config.union_threshold, config.score_threshold);
    engine = std::make_unique<AnalysisEngine>(config);
    engine->set_alert_callback([this](const Alert& a) { alerts.push_back(a); });
    fs.attach_filter(engine.get());
    pid = fs.register_process("suspect");
  }

  std::string doc(const std::string& name) { return std::string(kRoot) + "/" + name; }

  void put_prose(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, to_bytes(synth_prose(rng, n))).is_ok());
  }

  /// Encrypt-in-place until the engine suspends us (or files run out).
  std::size_t encrypt_until_stopped(std::size_t files) {
    std::size_t done = 0;
    for (std::size_t i = 0; i < files; ++i) {
      const std::string path = doc("f" + std::to_string(i) + ".txt");
      auto data = fs.read_file(pid, path);
      if (!data) break;
      const Bytes ct = crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12),
                                                ByteView(data.value()));
      if (!fs.write_file(pid, path, ByteView(ct)).is_ok()) break;
      ++done;
    }
    return done;
  }
};

TEST_F(DetectionTest, RansomwareBehaviorGetsSuspended) {
  config.score_threshold = 100;
  attach();
  for (int i = 0; i < 50; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  const std::size_t done = encrypt_until_stopped(50);
  EXPECT_TRUE(engine->is_suspended(pid));
  EXPECT_LT(done, 50u);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].pid, pid);
  EXPECT_GE(alerts[0].score, alerts[0].threshold);
}

TEST_F(DetectionTest, AlertFiresExactlyOnce) {
  config.score_threshold = 50;
  attach();
  for (int i = 0; i < 30; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  encrypt_until_stopped(30);
  // Even though the (blocked) process keeps trying:
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(fs.read_file(pid, doc("f29.txt")).code(), Errc::access_denied);
  }
  EXPECT_EQ(alerts.size(), 1u);
}

TEST_F(DetectionTest, SuspendedProcessDeniedEverythingButClose) {
  config.score_threshold = 40;
  attach();
  for (int i = 0; i < 20; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  // Hold a handle open across the detection.
  auto held = fs.open(pid, doc("f19.txt"), vfs::kRead);
  ASSERT_TRUE(held.is_ok());
  encrypt_until_stopped(19);
  ASSERT_TRUE(engine->is_suspended(pid));

  EXPECT_EQ(fs.open(pid, doc("f0.txt"), vfs::kRead).code(), Errc::access_denied);
  EXPECT_EQ(fs.remove(pid, doc("f1.txt")).code(), Errc::access_denied);
  EXPECT_EQ(fs.rename(pid, doc("f2.txt"), doc("x")).code(), Errc::access_denied);
  EXPECT_EQ(fs.mkdir(pid, doc("newdir")).code(), Errc::access_denied);
  EXPECT_EQ(fs.read(pid, held.value(), 10).code(), Errc::access_denied);
  // Close still works so handles don't leak.
  EXPECT_TRUE(fs.close(pid, held.value()).is_ok());
}

TEST_F(DetectionTest, SuspensionAppliesOutsideRootToo) {
  // The paper pauses the *process*, not just its in-root accesses.
  config.score_threshold = 40;
  attach();
  for (int i = 0; i < 20; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  encrypt_until_stopped(20);
  ASSERT_TRUE(engine->is_suspended(pid));
  EXPECT_EQ(fs.write_file(pid, "users/victim/appdata/x.bin", rng.bytes(10)).code(),
            Errc::access_denied);
}

TEST_F(DetectionTest, OtherProcessesUnaffectedBySuspension) {
  config.score_threshold = 40;
  attach();
  for (int i = 0; i < 20; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  encrypt_until_stopped(20);
  ASSERT_TRUE(engine->is_suspended(pid));
  const vfs::ProcessId clean = fs.register_process("clean");
  EXPECT_TRUE(fs.read_file(clean, doc("f10.txt")).is_ok());
  EXPECT_FALSE(engine->is_suspended(clean));
}

TEST_F(DetectionTest, ResumeClearsSuspensionAndScore) {
  config.score_threshold = 40;
  attach();
  for (int i = 0; i < 20; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  encrypt_until_stopped(20);
  ASSERT_TRUE(engine->is_suspended(pid));
  engine->resume_process(pid);
  EXPECT_FALSE(engine->is_suspended(pid));
  EXPECT_EQ(engine->score(pid), 0);
  EXPECT_TRUE(fs.read_file(pid, doc("f10.txt")).is_ok());
}

TEST_F(DetectionTest, ResumedProcessCanBeReflagged) {
  config.score_threshold = 40;
  attach();
  for (int i = 0; i < 40; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);
  encrypt_until_stopped(40);
  ASSERT_TRUE(engine->is_suspended(pid));
  engine->resume_process(pid);
  alerts.clear();
  encrypt_until_stopped(40);
  EXPECT_TRUE(engine->is_suspended(pid));
  EXPECT_EQ(alerts.size(), 1u);
}

TEST_F(DetectionTest, UnionAcceleratesDetection) {
  // Same workload, union on vs. off: union must never be slower, and the
  // alert should note it when it is the crossing event.
  auto run_with = [&](bool enable_union) {
    vfs::FileSystem local_fs;
    ScoringConfig cfg;
    cfg.protected_root = kRoot;
    cfg.enable_union = enable_union;
    AnalysisEngine eng(cfg);
    local_fs.attach_filter(&eng);
    const vfs::ProcessId p = local_fs.register_process("m");
    Rng local_rng(99);
    for (int i = 0; i < 60; ++i) {
      EXPECT_TRUE(local_fs
                      .put_file_raw(std::string(kRoot) + "/f" + std::to_string(i) + ".txt",
                                    to_bytes(synth_prose(local_rng, 15000)))
                      .is_ok());
    }
    std::size_t encrypted = 0;
    for (int i = 0; i < 60; ++i) {
      const std::string path = std::string(kRoot) + "/f" + std::to_string(i) + ".txt";
      auto data = local_fs.read_file(p, path);
      if (!data) break;
      const Bytes ct = crypto::chacha20_encrypt(local_rng.bytes(32), local_rng.bytes(12),
                                                ByteView(data.value()));
      if (!local_fs.write_file(p, path, ByteView(ct)).is_ok()) break;
      ++encrypted;
    }
    local_fs.detach_filter(&eng);
    return encrypted;
  };
  const std::size_t with_union = run_with(true);
  const std::size_t without_union = run_with(false);
  EXPECT_LE(with_union, without_union);
  EXPECT_LT(with_union, 10u);
}

TEST_F(DetectionTest, DetectionStopsMidOperationStream) {
  // Writes are scored in their post callback, once the bytes actually
  // land (a denied or faulted write must assess nothing), so the op
  // that crosses the threshold completes — and every disk access after
  // it is denied. Detection lags the crossing write by exactly one op,
  // never by a whole file.
  config.score_threshold = 10;  // one entropy hit is enough
  attach();
  put_prose(doc("a.txt"), 20000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  auto h = fs.open(pid, doc("out.bin"), vfs::kCreate);
  ASSERT_TRUE(h.is_ok());
  EXPECT_TRUE(fs.write(pid, h.value(), rng.bytes(8192)).is_ok());
  EXPECT_TRUE(engine->is_suspended(pid));
  EXPECT_EQ(fs.write(pid, h.value(), rng.bytes(8192)).code(), Errc::access_denied);
  EXPECT_TRUE(fs.close(pid, h.value()).is_ok());  // close is always allowed
  EXPECT_EQ(fs.read_unfiltered(doc("out.bin"))->size(), 8192u);
  EXPECT_EQ(fs.open(pid, doc("a.txt"), vfs::kRead).code(), Errc::access_denied);
}

TEST_F(DetectionTest, BenignEditorNeverFlagged) {
  attach();
  put_prose(doc("novel.txt"), 40000);
  // 30 editing sessions: read, append a paragraph, save.
  for (int session = 0; session < 30; ++session) {
    auto data = fs.read_file(pid, doc("novel.txt"));
    ASSERT_TRUE(data.is_ok());
    Bytes next = std::move(data).value();
    append(next, to_bytes("\n" + synth_prose(rng, 400)));
    ASSERT_TRUE(fs.write_file(pid, doc("novel.txt"), ByteView(next)).is_ok());
  }
  EXPECT_FALSE(engine->is_suspended(pid));
  EXPECT_EQ(engine->score(pid), 0);
  EXPECT_TRUE(alerts.empty());
}

TEST_F(DetectionTest, AlertCarriesUnionFlagWhenUnionCrosses) {
  config.score_threshold = 500;
  config.union_threshold = 50;
  config.union_bonus = 60;
  attach();
  put_prose(doc("a.txt"), 20000);
  put_prose(doc("b.txt"), 20000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  // Encrypt b.txt in place: entropy + type + similarity -> union bonus
  // carries the score past the lowered threshold.
  auto data = fs.read_file(pid, doc("b.txt"));
  ASSERT_TRUE(data.is_ok());
  const Bytes ct = crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12),
                                            ByteView(data.value()));
  (void)fs.write_file(pid, doc("b.txt"), ByteView(ct));
  ASSERT_TRUE(engine->is_suspended(pid));
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].threshold, 50);
}

}  // namespace
}  // namespace cryptodrop::core
