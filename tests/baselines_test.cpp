// Tests for the Related-Work baseline comparators.
#include <gtest/gtest.h>

#include "baselines/integrity_monitor.hpp"
#include "baselines/signature_av.hpp"
#include "harness/experiment.hpp"

namespace cryptodrop::baselines {
namespace {

// --- signature AV ----------------------------------------------------------

TEST(SignatureAv, FingerprintsAreStableAndVariantSensitive) {
  sim::SampleSpec a;
  a.family = "TeslaCrypt";
  a.seed = 1;
  sim::SampleSpec b = a;
  EXPECT_EQ(sample_fingerprint(a), sample_fingerprint(b));
  b.seed = 2;  // repacked variant
  EXPECT_NE(sample_fingerprint(a), sample_fingerprint(b));
  b.seed = 1;
  b.family = "CryptoWall";
  EXPECT_NE(sample_fingerprint(a), sample_fingerprint(b));
}

TEST(SignatureAv, MorphNeverMatchesOriginal) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    sim::SampleSpec spec;
    spec.family = "PoshCoder";
    spec.seed = seed;
    EXPECT_NE(sample_fingerprint(spec), morphed_fingerprint(spec));
  }
}

TEST(SignatureAv, BlocksExactlyWhatItLearned) {
  const auto specs = sim::table1_samples(1);
  SignatureAv av;
  av.learn_from(specs, 1.0, 7);
  EXPECT_EQ(av.signature_count(), specs.size());
  for (const sim::SampleSpec& spec : specs) {
    EXPECT_TRUE(av.blocks(spec));
    EXPECT_FALSE(av.blocks(morphed_fingerprint(spec)));
  }
}

TEST(SignatureAv, PartialCoverageMissesTheRest) {
  const auto specs = sim::table1_samples(2);
  SignatureAv av;
  av.learn_from(specs, 0.5, 9);
  std::size_t blocked = 0;
  for (const sim::SampleSpec& spec : specs) blocked += av.blocks(spec) ? 1 : 0;
  EXPECT_GT(blocked, specs.size() * 40 / 100);
  EXPECT_LT(blocked, specs.size() * 60 / 100);
}

TEST(SignatureAv, EmptyDatabaseBlocksNothing) {
  SignatureAv av;
  sim::SampleSpec spec;
  spec.family = "Anything";
  spec.seed = 42;
  EXPECT_FALSE(av.blocks(spec));
}

// --- integrity monitor -------------------------------------------------------

class IntegrityTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  vfs::ProcessId pid = 0;
  static constexpr const char* kRoot = "users/victim/documents";

  void SetUp() override {
    pid = fs.register_process("app");
    ASSERT_TRUE(fs.put_file_raw(doc("a.txt"), to_bytes("original a")).is_ok());
    ASSERT_TRUE(fs.put_file_raw(doc("b.txt"), to_bytes("original b")).is_ok());
    ASSERT_TRUE(fs.put_file_raw("elsewhere/c.txt", to_bytes("outside")).is_ok());
  }

  static std::string doc(const std::string& name) {
    return std::string(kRoot) + "/" + name;
  }
};

TEST_F(IntegrityTest, QuietWhenNothingChanges) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  EXPECT_EQ(monitor.alert_count(), 0u);
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, AlertsOnAnyModification) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.write_file(pid, doc("a.txt"), to_bytes("legit edit")).is_ok());
  ASSERT_EQ(monitor.alert_count(), 1u);
  EXPECT_EQ(monitor.alerts()[0].path, doc("a.txt"));
  EXPECT_EQ(monitor.alerts()[0].kind, IntegrityAlert::Kind::modified);
  // This is the §II criticism: it cannot tell this benign save from
  // ransomware — same alert either way.
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, AlertsOnDeletion) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.remove(pid, doc("b.txt")).is_ok());
  ASSERT_EQ(monitor.alert_count(), 1u);
  EXPECT_EQ(monitor.alerts()[0].kind, IntegrityAlert::Kind::deleted);
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, SilentOutsideTheProtectedRoot) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.write_file(pid, "elsewhere/c.txt", to_bytes("changed")).is_ok());
  ASSERT_TRUE(fs.remove(pid, "elsewhere/c.txt").is_ok());
  EXPECT_EQ(monitor.alert_count(), 0u);
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, CleanRenameWithinRootIsTracked) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.rename(pid, doc("a.txt"), doc("renamed.txt")).is_ok());
  EXPECT_EQ(monitor.alert_count(), 0u);  // content intact
  // Modifying it under the new name still alerts.
  ASSERT_TRUE(fs.write_file(pid, doc("renamed.txt"), to_bytes("new content")).is_ok());
  EXPECT_EQ(monitor.alert_count(), 1u);
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, ReplacementViaRenameAlerts) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.write_file(pid, doc("new.tmp"), to_bytes("ciphertext!")).is_ok());
  ASSERT_TRUE(fs.rename(pid, doc("new.tmp"), doc("a.txt")).is_ok());
  ASSERT_GE(monitor.alert_count(), 1u);
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, SuspendOnAlertStopsTheProcess) {
  IntegrityMonitor::Options options;
  options.suspend_on_alert = true;
  IntegrityMonitor monitor(options);
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.write_file(pid, doc("a.txt"), to_bytes("x")).is_ok());
  ASSERT_TRUE(monitor.is_suspended(pid));
  EXPECT_EQ(fs.write_file(pid, doc("b.txt"), to_bytes("y")).code(),
            Errc::access_denied);
  EXPECT_EQ(to_string(ByteView(*fs.read_unfiltered(doc("b.txt")))), "original b");
  fs.detach_filter(&monitor);
}

TEST_F(IntegrityTest, RebaselineAcceptsCurrentState) {
  IntegrityMonitor monitor({});
  fs.attach_filter(&monitor);
  ASSERT_TRUE(fs.write_file(pid, doc("a.txt"), to_bytes("v2")).is_ok());
  EXPECT_EQ(monitor.alert_count(), 1u);
  monitor.rebaseline();
  // Same content: no new alert until it changes again.
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  EXPECT_EQ(monitor.alert_count(), 1u);
  ASSERT_TRUE(fs.write_file(pid, doc("a.txt"), to_bytes("v3")).is_ok());
  EXPECT_EQ(monitor.alert_count(), 2u);
  fs.detach_filter(&monitor);
}

// --- the comparison the paper argues (§II) ---------------------------------

TEST(BaselineComparison, TripwireIsNoisyWhereCryptoDropIsQuiet) {
  corpus::CorpusSpec spec;
  spec.total_files = 300;
  spec.total_dirs = 30;
  spec.compute_hashes = false;
  harness::Environment env = harness::make_environment(spec, 404);

  // Microsoft Word under both monitors.
  std::size_t tripwire_alerts = 0;
  {
    vfs::FileSystem fs = env.base_fs.clone();
    IntegrityMonitor monitor({});
    fs.attach_filter(&monitor);
    const vfs::ProcessId pid = fs.register_process("Microsoft Word");
    sim::WorkloadContext ctx{fs, pid, env.corpus.root, Rng(5)};
    sim::benign_workload("Microsoft Word").run(ctx);
    tripwire_alerts = monitor.alert_count();
    fs.detach_filter(&monitor);
  }
  const auto cryptodrop = harness::run_benign_workload(
      env, sim::benign_workload("Microsoft Word"), core::ScoringConfig{}, 5);
  EXPECT_GT(tripwire_alerts, 0u);       // every save is an "intrusion"
  EXPECT_EQ(cryptodrop.final_score, 0); // CryptoDrop: nothing suspicious
}

}  // namespace
}  // namespace cryptodrop::baselines
