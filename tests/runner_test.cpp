// The parallel experiment runner: pool semantics, fail-fast validation,
// and the determinism contract — a parallel sweep must be bit-identical
// to the serial path at any job count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/session.hpp"
#include "harness/runner.hpp"

namespace cryptodrop::harness {
namespace {

class RunnerTest : public ::testing::Test {
 protected:
  static Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec = small_corpus_spec(220, 24);
    spec.compute_hashes = false;
    env = new Environment(make_environment(spec, 321));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  static std::vector<sim::SampleSpec> some_specs(std::size_t n) {
    std::vector<sim::SampleSpec> all = sim::table1_samples(1);
    // Stride across the zoo so all three behavior classes show up.
    std::vector<sim::SampleSpec> picked;
    const std::size_t stride = all.size() / n;
    for (std::size_t i = 0; i < n; ++i) picked.push_back(all[i * stride]);
    return picked;
  }
};

Environment* RunnerTest::env = nullptr;

TEST(RunnerPool, EffectiveJobsNeverZero) {
  EXPECT_GE(effective_jobs(0), 1u);
  EXPECT_EQ(effective_jobs(1), 1u);
  EXPECT_EQ(effective_jobs(7), 7u);
}

TEST(RunnerPool, CoversEveryIndexExactlyOnce) {
  constexpr std::size_t kCount = 500;
  std::vector<std::atomic<int>> seen(kCount);
  RunnerOptions options;
  options.jobs = 8;
  std::atomic<std::size_t> last_total{0};
  std::atomic<std::size_t> progress_calls{0};
  options.progress = [&](std::size_t done, std::size_t total) {
    (void)done;
    last_total = total;
    ++progress_calls;
  };
  parallel_for(kCount, options, [&](std::size_t i) { ++seen[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(seen[i].load(), 1) << "index " << i;
  }
  EXPECT_EQ(progress_calls.load(), kCount);
  EXPECT_EQ(last_total.load(), kCount);
}

TEST(RunnerPool, SingleJobRunsInOrderInline) {
  std::vector<std::size_t> order;
  RunnerOptions options;
  options.jobs = 1;
  parallel_for(5, options, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(RunnerPool, FirstExceptionPropagatesAfterDraining) {
  std::atomic<int> executed{0};
  RunnerOptions options;
  options.jobs = 4;
  EXPECT_THROW(
      parallel_for(64, options,
                   [&](std::size_t i) {
                     ++executed;
                     if (i == 13) throw std::runtime_error("trial 13 exploded");
                   }),
      std::runtime_error);
  // A failed trial must not wedge the pool: everything else still ran.
  EXPECT_EQ(executed.load(), 64);
}

TEST(RunnerPool, ZeroItemsIsANoOp) {
  RunnerOptions options;
  bool called = false;
  parallel_for(0, options, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_F(RunnerTest, ParallelCampaignBitIdenticalToSerial) {
  const auto specs = some_specs(6);
  const core::ScoringConfig config;

  const auto serial = run_campaign(*env, specs, config);
  RunnerOptions options;
  options.jobs = 4;
  const auto parallel = run_campaign_parallel(*env, specs, config, options);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const RansomwareRunResult& s = serial[i];
    const RansomwareRunResult& p = parallel[i];
    EXPECT_EQ(s.family, p.family);
    EXPECT_EQ(s.detected, p.detected);
    EXPECT_EQ(s.files_lost, p.files_lost);
    EXPECT_EQ(s.final_score, p.final_score);
    EXPECT_EQ(s.union_triggered, p.union_triggered);
    EXPECT_EQ(s.union_count, p.union_count);
    EXPECT_EQ(s.directories_touched, p.directories_touched);
    EXPECT_EQ(s.extensions_accessed, p.extensions_accessed);
    EXPECT_EQ(s.report.entropy_events, p.report.entropy_events);
    EXPECT_EQ(s.report.type_change_events, p.report.type_change_events);
    EXPECT_EQ(s.report.similarity_drop_events, p.report.similarity_drop_events);
    EXPECT_EQ(s.report.deletion_events, p.report.deletion_events);
    EXPECT_EQ(s.report.funneling_events, p.report.funneling_events);
    // Each trial owns its engine, so even per-op sequence numbers in the
    // timeline are schedule-independent.
    ASSERT_EQ(s.report.timeline.size(), p.report.timeline.size());
    for (std::size_t j = 0; j < s.report.timeline.size(); ++j) {
      EXPECT_EQ(s.report.timeline[j].op_seq, p.report.timeline[j].op_seq);
      EXPECT_EQ(s.report.timeline[j].indicator, p.report.timeline[j].indicator);
      EXPECT_EQ(s.report.timeline[j].points, p.report.timeline[j].points);
      EXPECT_EQ(s.report.timeline[j].path, p.report.timeline[j].path);
    }
  }
}

TEST_F(RunnerTest, BenignSuiteParallelMatchesSerial) {
  std::vector<sim::BenignWorkload> workloads = sim::figure6_workloads();
  const core::ScoringConfig config;

  std::vector<BenignRunResult> serial;
  for (const sim::BenignWorkload& w : workloads) {
    serial.push_back(run_benign_workload(*env, w, config, 9));
  }
  RunnerOptions options;
  options.jobs = 4;
  const auto parallel = run_benign_suite_parallel(*env, workloads, config, 9, options);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].app, parallel[i].app);
    EXPECT_EQ(serial[i].detected, parallel[i].detected);
    EXPECT_EQ(serial[i].final_score, parallel[i].final_score);
    EXPECT_EQ(serial[i].union_triggered, parallel[i].union_triggered);
  }
}

TEST_F(RunnerTest, SharedDigestCacheDoesNotChangeResults) {
  const auto specs = some_specs(3);
  core::ScoringConfig shared;
  shared.share_digest_cache = true;
  core::ScoringConfig isolated;
  isolated.share_digest_cache = false;

  RunnerOptions options;
  options.jobs = 2;
  const auto with = run_campaign_parallel(*env, specs, shared, options);
  const auto without = run_campaign_parallel(*env, specs, isolated, options);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t i = 0; i < with.size(); ++i) {
    EXPECT_EQ(with[i].files_lost, without[i].files_lost);
    EXPECT_EQ(with[i].final_score, without[i].final_score);
    EXPECT_EQ(with[i].report.similarity_drop_events,
              without[i].report.similarity_drop_events);
  }
}

TEST_F(RunnerTest, InvalidConfigFailsBeforeAnyTrialRuns) {
  core::ScoringConfig bad;
  bad.score_threshold = 100;  // default union_threshold 170 > 100
  RunnerOptions options;
  std::atomic<std::size_t> progressed{0};
  options.progress = [&](std::size_t, std::size_t) { ++progressed; };

  EXPECT_THROW(run_campaign_parallel(*env, some_specs(3), bad, options),
               std::invalid_argument);
  EXPECT_THROW(
      run_benign_suite_parallel(*env, sim::figure6_workloads(), bad, 9, options),
      std::invalid_argument);
  EXPECT_EQ(progressed.load(), 0u);
}

TEST_F(RunnerTest, MonitorSessionSnapshotRoundTrip) {
  core::MonitorSession session(env->base_fs, core::ScoringConfig{});
  const vfs::ProcessId pid = session.spawn("editor");

  // Touch one protected file so the engine has something on the books.
  const std::string path = env->corpus.manifest.front().path;
  ASSERT_TRUE(session.fs().read_file(pid, path).is_ok());

  const core::EngineSnapshot snap = session.snapshot();
  ASSERT_NE(snap.find(pid), nullptr);
  EXPECT_EQ(snap.find(pid)->pid, pid);
  EXPECT_GT(snap.observed_ops, 0u);

  // snapshot().report_for mirrors process_report, including the default
  // report for a pid the engine never saw.
  const core::ProcessReport direct = session.engine().process_report(pid);
  const core::ProcessReport via_snap = snap.report_for(pid);
  EXPECT_EQ(direct.score, via_snap.score);
  EXPECT_EQ(direct.read_extensions, via_snap.read_extensions);

  EXPECT_EQ(snap.find(9999), nullptr);
  EXPECT_EQ(snap.report_for(9999).threshold, core::ScoringConfig{}.score_threshold);
  EXPECT_EQ(snap.report_for(9999).score, 0);
}

TEST_F(RunnerTest, SessionsAreIsolatedFromEachOther) {
  // Two concurrent trials clone the same base volume; destruction in one
  // must be invisible to the other (the snapshot-revert analogue that
  // makes parallel trials safe).
  core::MonitorSession a(env->base_fs, core::ScoringConfig{});
  core::MonitorSession b(env->base_fs, core::ScoringConfig{});
  std::string path;
  for (const corpus::ManifestEntry& entry : env->corpus.manifest) {
    if (!entry.read_only) {
      path = entry.path;
      break;
    }
  }
  ASSERT_FALSE(path.empty());

  const vfs::ProcessId pa = a.spawn("destroyer");
  ASSERT_TRUE(a.fs().remove(pa, path).is_ok());
  EXPECT_FALSE(a.fs().read_file(pa, path).is_ok());

  const vfs::ProcessId pb = b.spawn("bystander");
  EXPECT_TRUE(b.fs().read_file(pb, path).is_ok());
  // b's engine never saw a's destruction (pids coincide across clones,
  // so compare measured events rather than scoreboard membership).
  EXPECT_EQ(b.snapshot().report_for(pb).deletion_events, 0u);
  EXPECT_EQ(a.snapshot().report_for(pa).deletion_events, 1u);
}

}  // namespace
}  // namespace cryptodrop::harness
