// Tests for the in-memory filesystem: namespace operations, handles,
// copy-on-write semantics, stable file ids, read-only enforcement.
#include <gtest/gtest.h>

#include "vfs/filesystem.hpp"

namespace cryptodrop::vfs {
namespace {

class VfsTest : public ::testing::Test {
 protected:
  FileSystem fs;
  ProcessId pid = 0;

  void SetUp() override { pid = fs.register_process("test"); }

  Bytes content(const std::string& path) {
    auto data = fs.read_unfiltered(path);
    return data ? *data : Bytes{};
  }
};

TEST_F(VfsTest, StartsWithOnlyRoot) {
  EXPECT_EQ(fs.file_count(), 0u);
  EXPECT_EQ(fs.dir_count(), 1u);
  EXPECT_TRUE(fs.is_directory(""));
}

TEST_F(VfsTest, MkdirCreatesNestedDirs) {
  EXPECT_TRUE(fs.mkdir(pid, "a/b/c").is_ok());
  EXPECT_TRUE(fs.is_directory("a"));
  EXPECT_TRUE(fs.is_directory("a/b"));
  EXPECT_TRUE(fs.is_directory("a/b/c"));
}

TEST_F(VfsTest, MkdirExistingFails) {
  ASSERT_TRUE(fs.mkdir(pid, "a").is_ok());
  EXPECT_EQ(fs.mkdir(pid, "a").code(), Errc::already_exists);
}

TEST_F(VfsTest, MkdirOverFileFails) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  EXPECT_EQ(fs.mkdir(pid, "f").code(), Errc::already_exists);
  EXPECT_EQ(fs.mkdir(pid, "f/sub").code(), Errc::not_a_directory);
}

TEST_F(VfsTest, WriteFileThenReadBack) {
  ASSERT_TRUE(fs.write_file(pid, "dir/file.txt", to_bytes("hello")).is_ok());
  auto data = fs.read_file(pid, "dir/file.txt");
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(to_string(ByteView(data.value())), "hello");
}

TEST_F(VfsTest, OpenMissingWithoutCreateFails) {
  EXPECT_EQ(fs.open(pid, "nope.txt", kRead).code(), Errc::not_found);
  EXPECT_EQ(fs.open(pid, "nope.txt", kWrite).code(), Errc::not_found);
}

TEST_F(VfsTest, OpenWithoutAccessModeFails) {
  EXPECT_EQ(fs.open(pid, "x", 0).code(), Errc::invalid_argument);
}

TEST_F(VfsTest, OpenDirectoryFails) {
  ASSERT_TRUE(fs.mkdir(pid, "d").is_ok());
  EXPECT_EQ(fs.open(pid, "d", kRead).code(), Errc::is_a_directory);
}

TEST_F(VfsTest, CreateImpliesWrite) {
  auto h = fs.open(pid, "new.bin", kCreate);
  ASSERT_TRUE(h.is_ok());
  EXPECT_TRUE(fs.write(pid, h.value(), to_bytes("data")).is_ok());
  EXPECT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(to_string(ByteView(content("new.bin"))), "data");
}

TEST_F(VfsTest, TruncateModeClearsAtOpen) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("original")).is_ok());
  auto h = fs.open(pid, "f", kWrite | kTruncate);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(content("f").size(), 0u);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, WriteWithoutTruncateOverwritesInPlace) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("AAAABBBB")).is_ok());
  auto h = fs.open(pid, "f", kRead | kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), to_bytes("xx")).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(to_string(ByteView(content("f"))), "xxAABBBB");
}

TEST_F(VfsTest, WriteExtendsPastEof) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("ab")).is_ok());
  auto h = fs.open(pid, "f", kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.seek(pid, h.value(), 4).is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), to_bytes("cd")).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  const Bytes c = content("f");
  ASSERT_EQ(c.size(), 6u);
  EXPECT_EQ(c[0], 'a');
  EXPECT_EQ(c[2], 0);  // zero-filled gap
  EXPECT_EQ(c[4], 'c');
}

TEST_F(VfsTest, ReadAdvancesPosition) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("abcdef")).is_ok());
  auto h = fs.open(pid, "f", kRead);
  ASSERT_TRUE(h.is_ok());
  auto first = fs.read(pid, h.value(), 3);
  ASSERT_TRUE(first.is_ok());
  EXPECT_EQ(to_string(ByteView(first.value())), "abc");
  auto second = fs.read(pid, h.value(), 10);
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(to_string(ByteView(second.value())), "def");
  auto eof = fs.read(pid, h.value(), 10);
  ASSERT_TRUE(eof.is_ok());
  EXPECT_TRUE(eof.value().empty());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, ReadOnWriteOnlyHandleFails) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  auto h = fs.open(pid, "f", kWrite);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(fs.read(pid, h.value(), 1).code(), Errc::access_denied);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, WriteOnReadOnlyHandleFails) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  auto h = fs.open(pid, "f", kRead);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(fs.write(pid, h.value(), to_bytes("y")).code(), Errc::access_denied);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, HandlesAreProcessScoped) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  auto h = fs.open(pid, "f", kRead);
  ASSERT_TRUE(h.is_ok());
  const ProcessId other = fs.register_process("other");
  EXPECT_EQ(fs.read(other, h.value(), 1).code(), Errc::invalid_argument);
  EXPECT_EQ(fs.close(other, h.value()).code(), Errc::invalid_argument);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, CloseTwiceFails) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  auto h = fs.open(pid, "f", kRead);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(fs.close(pid, h.value()).code(), Errc::invalid_argument);
}

TEST_F(VfsTest, NoHandleLeaks) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fs.write_file(pid, "f" + std::to_string(i), to_bytes("x")).is_ok());
  }
  for (int i = 0; i < 10; ++i) {
    auto data = fs.read_file(pid, "f" + std::to_string(i));
    ASSERT_TRUE(data.is_ok());
  }
  EXPECT_EQ(fs.open_handle_count(), 0u);
}

TEST_F(VfsTest, TruncateShrinksAndGrows) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("abcdef")).is_ok());
  auto h = fs.open(pid, "f", kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.truncate(pid, h.value(), 3).is_ok());
  EXPECT_EQ(content("f").size(), 3u);
  ASSERT_TRUE(fs.truncate(pid, h.value(), 8).is_ok());
  EXPECT_EQ(content("f").size(), 8u);
  EXPECT_EQ(content("f")[7], 0);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, RemoveFile) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  EXPECT_TRUE(fs.remove(pid, "f").is_ok());
  EXPECT_FALSE(fs.exists("f"));
  EXPECT_EQ(fs.remove(pid, "f").code(), Errc::not_found);
}

TEST_F(VfsTest, RemoveDirectoryViaRemoveFails) {
  ASSERT_TRUE(fs.mkdir(pid, "d").is_ok());
  EXPECT_EQ(fs.remove(pid, "d").code(), Errc::is_a_directory);
}

TEST_F(VfsTest, ReadOnlyFileRefusesWriteAndDelete) {
  ASSERT_TRUE(fs.put_file_raw("locked.txt", to_bytes("keep me"), /*read_only=*/true).is_ok());
  EXPECT_EQ(fs.open(pid, "locked.txt", kWrite).code(), Errc::read_only);
  EXPECT_EQ(fs.remove(pid, "locked.txt").code(), Errc::read_only);
  // Reading is fine.
  auto data = fs.read_file(pid, "locked.txt");
  ASSERT_TRUE(data.is_ok());
  EXPECT_EQ(to_string(ByteView(data.value())), "keep me");
}

TEST_F(VfsTest, SetReadOnlyToggles) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  ASSERT_TRUE(fs.set_read_only("f", true).is_ok());
  EXPECT_EQ(fs.remove(pid, "f").code(), Errc::read_only);
  ASSERT_TRUE(fs.set_read_only("f", false).is_ok());
  EXPECT_TRUE(fs.remove(pid, "f").is_ok());
}

TEST_F(VfsTest, RenamePreservesFileIdAndContent) {
  ASSERT_TRUE(fs.write_file(pid, "a/src.txt", to_bytes("payload")).is_ok());
  const FileId id = fs.stat("a/src.txt").value().id;
  ASSERT_TRUE(fs.rename(pid, "a/src.txt", "b/dst.txt").is_ok());
  EXPECT_FALSE(fs.exists("a/src.txt"));
  ASSERT_TRUE(fs.exists("b/dst.txt"));
  EXPECT_EQ(fs.stat("b/dst.txt").value().id, id);
  EXPECT_EQ(to_string(ByteView(content("b/dst.txt"))), "payload");
}

TEST_F(VfsTest, RenameReplacesExistingDestination) {
  ASSERT_TRUE(fs.write_file(pid, "src", to_bytes("new")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "dst", to_bytes("old")).is_ok());
  const FileId src_id = fs.stat("src").value().id;
  ASSERT_TRUE(fs.rename(pid, "src", "dst").is_ok());
  EXPECT_EQ(to_string(ByteView(content("dst"))), "new");
  EXPECT_EQ(fs.stat("dst").value().id, src_id);
  EXPECT_EQ(fs.file_count(), 1u);
}

TEST_F(VfsTest, RenameOntoReadOnlyDestinationFails) {
  ASSERT_TRUE(fs.write_file(pid, "src", to_bytes("new")).is_ok());
  ASSERT_TRUE(fs.put_file_raw("dst", to_bytes("old"), /*read_only=*/true).is_ok());
  EXPECT_EQ(fs.rename(pid, "src", "dst").code(), Errc::read_only);
  EXPECT_EQ(to_string(ByteView(content("dst"))), "old");
  EXPECT_TRUE(fs.exists("src"));
}

TEST_F(VfsTest, RenameMissingSourceFails) {
  EXPECT_EQ(fs.rename(pid, "ghost", "dst").code(), Errc::not_found);
}

TEST_F(VfsTest, DirectoryRenameUnsupported) {
  ASSERT_TRUE(fs.mkdir(pid, "d").is_ok());
  EXPECT_EQ(fs.rename(pid, "d", "e").code(), Errc::invalid_argument);
}

TEST_F(VfsTest, RenameToSamePathIsNoOp) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  EXPECT_TRUE(fs.rename(pid, "f", "f").is_ok());
  EXPECT_EQ(to_string(ByteView(content("f"))), "x");
}

TEST_F(VfsTest, ListImmediateChildren) {
  ASSERT_TRUE(fs.write_file(pid, "top/a.txt", to_bytes("1")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "top/sub/b.txt", to_bytes("2")).is_ok());
  ASSERT_TRUE(fs.mkdir(pid, "top/zdir").is_ok());
  const auto entries = fs.list("top");
  ASSERT_EQ(entries.size(), 3u);  // a.txt, sub, zdir — not sub/b.txt
  EXPECT_EQ(entries[0].name, "a.txt");
  EXPECT_FALSE(entries[0].is_directory);
  EXPECT_EQ(entries[0].size, 1u);
  EXPECT_EQ(entries[1].name, "sub");
  EXPECT_TRUE(entries[1].is_directory);
  EXPECT_EQ(entries[2].name, "zdir");
}

TEST_F(VfsTest, ListRootAndMissing) {
  ASSERT_TRUE(fs.write_file(pid, "rootfile", to_bytes("x")).is_ok());
  const auto entries = fs.list("");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "rootfile");
  EXPECT_TRUE(fs.list("missing").empty());
}

TEST_F(VfsTest, ListDoesNotLeakSiblingPrefixes) {
  ASSERT_TRUE(fs.write_file(pid, "ab/x", to_bytes("1")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "abc/y", to_bytes("2")).is_ok());
  const auto entries = fs.list("ab");
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "x");
}

TEST_F(VfsTest, ListFilesRecursive) {
  ASSERT_TRUE(fs.write_file(pid, "r/a", to_bytes("1")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "r/s/b", to_bytes("2")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "other/c", to_bytes("3")).is_ok());
  const auto files = fs.list_files_recursive("r");
  ASSERT_EQ(files.size(), 2u);
  EXPECT_EQ(files[0], "r/a");
  EXPECT_EQ(files[1], "r/s/b");
}

TEST_F(VfsTest, StatReportsSizeAndId) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("12345")).is_ok());
  auto info = fs.stat("f");
  ASSERT_TRUE(info.is_ok());
  EXPECT_EQ(info.value().size, 5u);
  EXPECT_NE(info.value().id, kNoFile);
  EXPECT_FALSE(info.value().read_only);
  EXPECT_EQ(fs.stat("nope").code(), Errc::not_found);
}

TEST_F(VfsTest, DistinctFilesGetDistinctIds) {
  ASSERT_TRUE(fs.write_file(pid, "a", to_bytes("1")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "b", to_bytes("2")).is_ok());
  EXPECT_NE(fs.stat("a").value().id, fs.stat("b").value().id);
}

TEST_F(VfsTest, CountersTrackOperations) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  auto before = fs.counters();
  auto data = fs.read_file(pid, "f");
  ASSERT_TRUE(data.is_ok());
  auto after = fs.counters();
  EXPECT_EQ(after.opens, before.opens + 1);
  EXPECT_EQ(after.reads, before.reads + 1);
  EXPECT_EQ(after.closes, before.closes + 1);
}

// --- copy-on-write & clone ---------------------------------------------

TEST_F(VfsTest, CloneSharesContentPointers) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("shared")).is_ok());
  FileSystem clone = fs.clone();
  EXPECT_EQ(fs.read_unfiltered("f").get(), clone.read_unfiltered("f").get());
}

TEST_F(VfsTest, CloneWriteDoesNotAffectBase) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("original")).is_ok());
  FileSystem clone = fs.clone();
  const ProcessId cpid = clone.register_process("clone-writer");
  ASSERT_TRUE(clone.write_file(cpid, "f", to_bytes("mutated")).is_ok());
  EXPECT_EQ(to_string(ByteView(*fs.read_unfiltered("f"))), "original");
  EXPECT_EQ(to_string(ByteView(*clone.read_unfiltered("f"))), "mutated");
}

TEST_F(VfsTest, CloneRemoveDoesNotAffectBase) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  FileSystem clone = fs.clone();
  const ProcessId cpid = clone.register_process("p");
  ASSERT_TRUE(clone.remove(cpid, "f").is_ok());
  EXPECT_TRUE(fs.exists("f"));
  EXPECT_FALSE(clone.exists("f"));
}

TEST_F(VfsTest, CloneDoesNotCopyFiltersOrHandles) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  auto h = fs.open(pid, "f", kRead);
  ASSERT_TRUE(h.is_ok());
  FileSystem clone = fs.clone();
  EXPECT_EQ(clone.open_handle_count(), 0u);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(VfsTest, WriteReplacesContentPointer) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("v1")).is_ok());
  auto before = fs.read_unfiltered("f");
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("v2")).is_ok());
  auto after = fs.read_unfiltered("f");
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(to_string(ByteView(*before)), "v1");  // old buffer intact
  EXPECT_EQ(to_string(ByteView(*after)), "v2");
}

TEST_F(VfsTest, PutFileRawOverwriteKeepsId) {
  ASSERT_TRUE(fs.put_file_raw("f", to_bytes("a")).is_ok());
  const FileId id = fs.stat("f").value().id;
  ASSERT_TRUE(fs.put_file_raw("f", to_bytes("b")).is_ok());
  EXPECT_EQ(fs.stat("f").value().id, id);
}

TEST_F(VfsTest, InvalidPathsRejectedEverywhere) {
  EXPECT_EQ(fs.write_file(pid, "a/../b", to_bytes("x")).code(), Errc::invalid_argument);
  EXPECT_EQ(fs.open(pid, "..", kRead).code(), Errc::invalid_argument);
  EXPECT_EQ(fs.remove(pid, "./x").code(), Errc::invalid_argument);
  EXPECT_EQ(fs.mkdir(pid, "a/./b").code(), Errc::invalid_argument);
}

TEST_F(VfsTest, ProcessNamesResolve) {
  const ProcessId a = fs.register_process("alpha");
  EXPECT_EQ(fs.process_name(a), "alpha");
  EXPECT_EQ(fs.process_name(9999), "<unknown>");
  EXPECT_EQ(fs.process_name(0), "<unknown>");
}

}  // namespace
}  // namespace cryptodrop::vfs
