// Tests for the ransomware simulator: behavior classes, traversal
// orders, family presets, and the Table-I sample factory.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "corpus/builder.hpp"
#include "crypto/sha256.hpp"
#include "sim/ransomware/families.hpp"
#include "sim/ransomware/ransomware.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::sim {
namespace {

/// Small unprotected environment: no engine attached, so samples run to
/// completion and we can verify their raw behavior.
class RansomwareSimTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  corpus::Corpus corp;
  vfs::ProcessId pid = 0;

  void SetUp() override {
    corpus::CorpusSpec spec;
    spec.total_files = 80;
    spec.total_dirs = 12;
    spec.max_depth = 3;
    spec.read_only_fraction = 0.0;
    spec.compute_hashes = false;
    Rng rng(5);
    corp = corpus::build_corpus(fs, spec, rng);
    pid = fs.register_process("malware");
  }

  RansomwareProfile base_profile(BehaviorClass cls) {
    RansomwareProfile p;
    p.family = "Test";
    p.behavior = cls;
    p.note_name = "NOTE.txt";
    return p;
  }
};

TEST_F(RansomwareSimTest, ClassAEncryptsEverythingUnopposed) {
  RansomwareSample sample(base_profile(BehaviorClass::A), 1);
  const SampleRun run = sample.run(fs, pid, corp.root);
  EXPECT_TRUE(run.ran_to_completion);
  EXPECT_EQ(run.files_attacked, corp.file_count());
  EXPECT_EQ(run.files_completed, corp.file_count());
  EXPECT_EQ(corpus::count_files_lost(fs, corp), corp.file_count());
  EXPECT_EQ(run.ops_denied, 0u);
}

TEST_F(RansomwareSimTest, ClassBEncryptsEverythingUnopposed) {
  RansomwareSample sample(base_profile(BehaviorClass::B), 2);
  const SampleRun run = sample.run(fs, pid, corp.root);
  EXPECT_TRUE(run.ran_to_completion);
  EXPECT_EQ(corpus::count_files_lost(fs, corp), corp.file_count());
}

TEST_F(RansomwareSimTest, ClassCEncryptsEverythingUnopposed) {
  auto profile = base_profile(BehaviorClass::C);
  profile.delete_original = true;
  RansomwareSample sample(profile, 3);
  const SampleRun run = sample.run(fs, pid, corp.root);
  EXPECT_TRUE(run.ran_to_completion);
  EXPECT_EQ(corpus::count_files_lost(fs, corp), corp.file_count());
}

TEST_F(RansomwareSimTest, EncryptedContentFailsShaVerification) {
  // The paper's per-run check: SHA-256 of attacked documents no longer
  // matches the manifest.
  corpus::CorpusSpec spec;
  spec.total_files = 20;
  spec.total_dirs = 4;
  spec.read_only_fraction = 0.0;  // read-only files would survive Class A
  vfs::FileSystem fresh;
  Rng rng(6);
  const corpus::Corpus small = corpus::build_corpus(fresh, spec, rng);
  const vfs::ProcessId p = fresh.register_process("m");
  RansomwareSample sample(base_profile(BehaviorClass::A), 4);
  (void)sample.run(fresh, p, small.root);
  std::size_t mismatches = 0;
  for (const auto& entry : small.manifest) {
    const auto data = fresh.read_unfiltered(entry.path);
    if (data == nullptr || crypto::sha256_hex(ByteView(*data)) != entry.sha256) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, small.file_count());
}

TEST_F(RansomwareSimTest, RansomNotesAreDropped) {
  auto profile = base_profile(BehaviorClass::A);
  profile.write_ransom_note = true;
  profile.note_first = true;
  RansomwareSample sample(profile, 5);
  (void)sample.run(fs, pid, corp.root);
  std::size_t notes = 0;
  for (const std::string& path : fs.list_files_recursive(corp.root)) {
    if (vfs::path_filename(path) == "NOTE.txt") ++notes;
  }
  EXPECT_GT(notes, 0u);
}

TEST_F(RansomwareSimTest, NotesAreNeverAttacked) {
  auto profile = base_profile(BehaviorClass::A);
  RansomwareSample sample(profile, 6);
  const SampleRun run = sample.run(fs, pid, corp.root);
  for (const std::string& path : run.attack_order) {
    EXPECT_NE(vfs::path_filename(path), "NOTE.txt");
  }
}

TEST_F(RansomwareSimTest, RenameAppendsExtension) {
  auto profile = base_profile(BehaviorClass::A);
  profile.encrypted_extension = ".vvv";
  profile.rename_encrypted = true;
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 7);
  (void)sample.run(fs, pid, corp.root);
  std::size_t renamed = 0;
  for (const std::string& path : fs.list_files_recursive(corp.root)) {
    if (path.ends_with(".vvv")) ++renamed;
  }
  EXPECT_EQ(renamed, corp.file_count());
}

TEST_F(RansomwareSimTest, TargetExtensionsRestrictAttack) {
  auto profile = base_profile(BehaviorClass::A);
  profile.target_extensions = {"txt", "md"};
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 8);
  const SampleRun run = sample.run(fs, pid, corp.root);
  std::size_t text_files = 0;
  for (const auto& entry : corp.manifest) {
    const std::string ext = vfs::path_extension(entry.path);
    if (ext == "txt" || ext == "md") ++text_files;
  }
  EXPECT_EQ(run.files_attacked, text_files);
  EXPECT_EQ(corpus::count_files_lost(fs, corp), text_files);
}

TEST_F(RansomwareSimTest, MaxFilesCapsDamage) {
  auto profile = base_profile(BehaviorClass::A);
  profile.max_files = 5;
  RansomwareSample sample(profile, 9);
  const SampleRun run = sample.run(fs, pid, corp.root);
  EXPECT_EQ(run.files_attacked, 5u);
  EXPECT_EQ(corpus::count_files_lost(fs, corp), 5u);
}

TEST_F(RansomwareSimTest, SizeAscendingAttacksSmallestFirst) {
  auto profile = base_profile(BehaviorClass::A);
  profile.traversal = Traversal::size_ascending;
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 10);
  const SampleRun run = sample.run(fs, pid, corp.root);
  std::map<std::string, std::size_t> sizes;
  for (const auto& entry : corp.manifest) sizes[entry.path] = entry.size;
  for (std::size_t i = 1; i < run.attack_order.size(); ++i) {
    EXPECT_LE(sizes[run.attack_order[i - 1]], sizes[run.attack_order[i]])
        << "at index " << i;
  }
}

TEST_F(RansomwareSimTest, RootDownAttacksShallowFirst) {
  auto profile = base_profile(BehaviorClass::A);
  profile.traversal = Traversal::root_down;
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 11);
  const SampleRun run = sample.run(fs, pid, corp.root);
  // Depth must be non-decreasing along the attack order.
  for (std::size_t i = 1; i < run.attack_order.size(); ++i) {
    EXPECT_LE(vfs::path_depth(run.attack_order[i - 1]),
              vfs::path_depth(run.attack_order[i]));
  }
}

TEST_F(RansomwareSimTest, DepthFirstReachesDeepDirectoriesEarly) {
  auto profile = base_profile(BehaviorClass::A);
  profile.traversal = Traversal::depth_first_deepest;
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 12);
  const SampleRun run = sample.run(fs, pid, corp.root);
  ASSERT_FALSE(run.attack_order.empty());
  // The very last files in a post-order walk are the root's own files.
  const std::size_t root_depth = vfs::path_depth(corp.root) + 1;
  EXPECT_EQ(vfs::path_depth(run.attack_order.back()), root_depth);
}

TEST_F(RansomwareSimTest, ExtensionPriorityHonorsList) {
  auto profile = base_profile(BehaviorClass::A);
  profile.traversal = Traversal::extension_priority;
  profile.target_extensions = {"pdf", "txt"};
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 13);
  const SampleRun run = sample.run(fs, pid, corp.root);
  // All pdf files come before all txt files, which come before the rest.
  std::size_t last_pdf = 0, first_txt = run.attack_order.size(), first_other = run.attack_order.size();
  for (std::size_t i = 0; i < run.attack_order.size(); ++i) {
    const std::string ext = vfs::path_extension(run.attack_order[i]);
    if (ext == "pdf") last_pdf = i;
    else if (ext == "txt") first_txt = std::min(first_txt, i);
    else first_other = std::min(first_other, i);
  }
  EXPECT_LT(last_pdf, first_txt);
  EXPECT_LT(first_txt, first_other);
}

TEST_F(RansomwareSimTest, RandomOrderIsSeedDeterministic) {
  auto profile = base_profile(BehaviorClass::A);
  profile.traversal = Traversal::random_order;
  profile.write_ransom_note = false;
  vfs::FileSystem fs2 = fs.clone();
  const vfs::ProcessId p2 = fs2.register_process("m2");
  RansomwareSample s1(profile, 14);
  RansomwareSample s2(profile, 14);
  const SampleRun r1 = s1.run(fs, pid, corp.root);
  const SampleRun r2 = s2.run(fs2, p2, corp.root);
  EXPECT_EQ(r1.attack_order, r2.attack_order);
}

TEST_F(RansomwareSimTest, ClassBStagesOutsideRootAndReturns) {
  auto profile = base_profile(BehaviorClass::B);
  profile.return_with_new_name = true;
  profile.encrypted_extension = ".enc";
  profile.max_files = 3;
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 15);
  (void)sample.run(fs, pid, corp.root);
  // Staging dir exists but holds nothing after the round trips.
  EXPECT_TRUE(fs.exists(profile.staging_dir));
  EXPECT_TRUE(fs.list_files_recursive(profile.staging_dir).empty());
  // Three .enc artifacts back under the root.
  std::size_t enc = 0;
  for (const std::string& path : fs.list_files_recursive(corp.root)) {
    if (path.ends_with(".enc")) ++enc;
  }
  EXPECT_EQ(enc, 3u);
}

TEST_F(RansomwareSimTest, ClassCMoveOverKeepsFileCount) {
  auto profile = base_profile(BehaviorClass::C);
  profile.delete_original = false;  // move-over-original
  profile.write_ransom_note = false;
  RansomwareSample sample(profile, 16);
  (void)sample.run(fs, pid, corp.root);
  EXPECT_EQ(fs.list_files_recursive(corp.root).size(), corp.file_count());
  EXPECT_EQ(corpus::count_files_lost(fs, corp), corp.file_count());
}

TEST_F(RansomwareSimTest, ClassCDeleteFailsOnReadOnlyOriginals) {
  // The GPcode quirk: read-only originals survive a Class C deleter.
  vfs::FileSystem fresh;
  corpus::CorpusSpec spec;
  spec.total_files = 30;
  spec.total_dirs = 5;
  spec.read_only_fraction = 0.5;
  spec.compute_hashes = false;
  Rng rng(17);
  const corpus::Corpus rc = corpus::build_corpus(fresh, spec, rng);
  std::size_t read_only = 0;
  for (const auto& e : rc.manifest) read_only += e.read_only ? 1 : 0;
  ASSERT_GT(read_only, 0u);

  auto profile = base_profile(BehaviorClass::C);
  profile.delete_original = true;
  profile.write_ransom_note = false;
  const vfs::ProcessId p = fresh.register_process("gpcode");
  RansomwareSample sample(profile, 18);
  const SampleRun run = sample.run(fresh, p, rc.root);
  EXPECT_EQ(run.failed_deletes, read_only);
  EXPECT_EQ(corpus::count_files_lost(fresh, rc), rc.file_count() - read_only);
}

TEST_F(RansomwareSimTest, XoristOutputDiffersFromStrongCipher) {
  auto profile = base_profile(BehaviorClass::A);
  profile.cipher = CipherKind::xor_weak;
  profile.write_ransom_note = false;
  profile.rename_encrypted = false;
  profile.target_extensions = {"txt"};
  RansomwareSample sample(profile, 19);
  (void)sample.run(fs, pid, corp.root);
  // XOR-ed text is still recognizably non-uniform for short key spans;
  // at minimum the files changed.
  EXPECT_GT(corpus::count_files_lost(fs, corp), 0u);
}

// --- family presets & Table-I factory ---------------------------------------

TEST(Families, AllNamesHaveProfiles) {
  for (const std::string& name : family_names()) {
    const RansomwareProfile p = family_profile(name, BehaviorClass::A);
    EXPECT_EQ(p.family, name);
  }
}

TEST(Families, PresetTraversalsMatchPaperObservations) {
  EXPECT_EQ(family_profile("TeslaCrypt", BehaviorClass::A).traversal,
            Traversal::depth_first_deepest);
  EXPECT_EQ(family_profile("CTB-Locker", BehaviorClass::B).traversal,
            Traversal::size_ascending);
  EXPECT_EQ(family_profile("GPcode", BehaviorClass::A).traversal,
            Traversal::root_down);
  EXPECT_EQ(family_profile("Xorist", BehaviorClass::A).cipher,
            CipherKind::xor_weak);
}

TEST(Families, CtbLockerTargetsTxtAndMd) {
  const auto exts = family_profile("CTB-Locker", BehaviorClass::B).target_extensions;
  EXPECT_EQ(exts, (std::vector<std::string>{"txt", "md"}));
}

TEST(Families, Table1SampleCountsMatchPaper) {
  const auto samples = table1_samples(1);
  ASSERT_EQ(samples.size(), 492u);
  std::map<std::string, std::size_t> per_family;
  std::size_t a = 0, b = 0, c = 0;
  for (const SampleSpec& s : samples) {
    ++per_family[s.family];
    switch (s.behavior) {
      case BehaviorClass::A: ++a; break;
      case BehaviorClass::B: ++b; break;
      case BehaviorClass::C: ++c; break;
    }
  }
  EXPECT_EQ(a, 282u);
  EXPECT_EQ(b, 147u);
  EXPECT_EQ(c, 63u);
  EXPECT_EQ(per_family["TeslaCrypt"], 149u);
  EXPECT_EQ(per_family["CTB-Locker"], 122u);
  EXPECT_EQ(per_family["Filecoder"], 72u);
  EXPECT_EQ(per_family["Xorist"], 51u);
  EXPECT_EQ(per_family["CryptoLocker"], 31u);
  EXPECT_EQ(per_family["Virlock"], 20u);
  EXPECT_EQ(per_family["Ransom-FUE"], 1u);
}

TEST(Families, ClassCDisposalSplitIs41MoveOver22Delete) {
  const auto samples = table1_samples(2);
  std::size_t move_over = 0, deleters = 0;
  for (const SampleSpec& s : samples) {
    if (s.behavior != BehaviorClass::C) continue;
    if (s.profile.delete_original) ++deleters;
    else ++move_over;
  }
  EXPECT_EQ(move_over, 41u);
  EXPECT_EQ(deleters, 22u);
}

TEST(Families, SampleSeedsAreUnique) {
  const auto samples = table1_samples(3);
  std::set<std::uint64_t> seeds;
  for (const SampleSpec& s : samples) seeds.insert(s.seed);
  EXPECT_EQ(seeds.size(), samples.size());
}

TEST(Families, FactoryIsDeterministic) {
  const auto s1 = table1_samples(4);
  const auto s2 = table1_samples(4);
  ASSERT_EQ(s1.size(), s2.size());
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].seed, s2[i].seed);
    EXPECT_EQ(s1[i].family, s2[i].family);
    EXPECT_EQ(s1[i].profile.traversal, s2[i].profile.traversal);
  }
}

TEST(Families, BehaviorClassNames) {
  EXPECT_EQ(behavior_class_name(BehaviorClass::A), "A");
  EXPECT_EQ(behavior_class_name(BehaviorClass::B), "B");
  EXPECT_EQ(behavior_class_name(BehaviorClass::C), "C");
}

}  // namespace
}  // namespace cryptodrop::sim
