// Tests for the §III-F evasion techniques, family-level scoring, dynamic
// scoring (§V-C future work), and shadow-copy behavior.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace cryptodrop {
namespace {

class EvasionTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 600;
    spec.total_dirs = 60;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 555));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  static sim::SampleSpec evader(std::uint64_t seed) {
    sim::SampleSpec spec;
    spec.family = "Evader";
    spec.behavior = sim::BehaviorClass::A;
    spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
    spec.profile.family = "Evader";
    spec.profile.target_extensions.clear();
    spec.seed = seed;
    return spec;
  }
};

harness::Environment* EvasionTest::env = nullptr;

// --- §III-F technique-by-technique -----------------------------------------

TEST_F(EvasionTest, HeaderPreservationSuppressesTypeChange) {
  sim::SampleSpec spec = evader(1);
  spec.profile.evasion.preserve_header_bytes = 16 * 1024;
  const auto r = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  // Magic bytes survive, so the type-change indicator goes nearly silent
  // (small text files can still flip: the appended key blob makes a
  // fully-preserved text file stop looking like text)...
  EXPECT_LE(r.report.type_change_events, 2u);
  const auto baseline =
      harness::run_ransomware_sample(*env, evader(1), core::ScoringConfig{});
  EXPECT_LT(r.report.type_change_events, baseline.report.type_change_events + 1);
  // ...but similarity and entropy still catch the transformation.
  EXPECT_TRUE(r.detected);
}

TEST_F(EvasionTest, HeaderPreservationCostsRecoverableData) {
  sim::SampleSpec spec = evader(2);
  spec.profile.evasion.preserve_header_bytes = 16 * 1024;
  const auto r = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  EXPECT_LT(r.sample.bytes_destroyed, r.sample.bytes_touched);
}

TEST_F(EvasionTest, DecoyWritesSuppressEntropyDelta) {
  sim::SampleSpec spec = evader(3);
  spec.profile.evasion.decoy_writes_per_file = 3;
  spec.profile.evasion.decoy_bytes = 256 * 1024;
  const auto r = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  const auto baseline =
      harness::run_ransomware_sample(*env, evader(3), core::ScoringConfig{});
  // Heavy prose decoys keep Pwrite near Pread: far fewer entropy events
  // per attacked file than the undisguised run.
  const double evaded_rate =
      static_cast<double>(r.report.entropy_events) /
      static_cast<double>(std::max<std::size_t>(r.sample.files_attacked, 1));
  const double base_rate =
      static_cast<double>(baseline.report.entropy_events) /
      static_cast<double>(std::max<std::size_t>(baseline.sample.files_attacked, 1));
  EXPECT_LT(evaded_rate, base_rate);
  // Type change + similarity still detect it.
  EXPECT_TRUE(r.detected);
}

TEST_F(EvasionTest, PartialEncryptionReducesDestructionAndSignal) {
  sim::SampleSpec spec = evader(4);
  spec.profile.evasion.preserve_fraction = 0.6;
  const auto r = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  // ~60% of every file survives for the victim.
  EXPECT_LT(r.sample.bytes_destroyed, r.sample.bytes_touched / 2);
}

TEST_F(EvasionTest, KitchenSinkEvaderStillPaysInData) {
  // Even the combined §III-F evader either gets detected or leaves the
  // majority of each file recoverable — the paper's trade-off argument.
  sim::SampleSpec spec = evader(5);
  spec.profile.evasion.preserve_header_bytes = 16 * 1024;
  spec.profile.evasion.preserve_fraction = 0.5;
  spec.profile.evasion.pad_low_entropy_bytes = 64 * 1024;
  spec.profile.evasion.decoy_writes_per_file = 2;
  const auto r = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  const double destroyed = static_cast<double>(r.sample.bytes_destroyed) /
                           static_cast<double>(std::max<std::uint64_t>(r.sample.bytes_touched, 1));
  EXPECT_TRUE(r.detected || destroyed < 0.55)
      << "undetected evader destroyed " << destroyed;
}

// --- process-splitting vs family scoring ------------------------------------

TEST_F(EvasionTest, FamilyScoringStopsWorkerSplitEvasion) {
  sim::SampleSpec spec = evader(6);
  spec.profile.worker_processes = 8;
  const auto split = harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  const auto solo = harness::run_ransomware_sample(*env, evader(6), core::ScoringConfig{});
  EXPECT_TRUE(split.detected);
  // Splitting across 8 workers buys nothing against family scoring:
  // losses stay in the same small band as the single-process run.
  EXPECT_LE(split.files_lost, solo.files_lost + 6);
}

TEST_F(EvasionTest, WithoutFamilyScoringWorkersMultiplyDamage) {
  sim::SampleSpec spec = evader(7);
  spec.profile.worker_processes = 8;
  core::ScoringConfig no_family;
  no_family.enable_family_scoring = false;
  const auto split = harness::run_ransomware_sample(*env, spec, no_family);
  const auto with_family =
      harness::run_ransomware_sample(*env, spec, core::ScoringConfig{});
  EXPECT_GT(split.files_lost, with_family.files_lost * 3);
}

TEST(FamilyScoring, ChildOpsAccrueToRoot) {
  vfs::FileSystem fs;
  core::AnalysisEngine engine{core::ScoringConfig{}};
  fs.attach_filter(&engine);
  const vfs::ProcessId parent = fs.register_process("dropper");
  const vfs::ProcessId child = fs.register_process("worker", parent);
  const vfs::ProcessId grandchild = fs.register_process("worker2", child);
  ASSERT_TRUE(fs.put_file_raw("users/victim/documents/a.txt",
                              to_bytes(std::string(2000, 'x'))).is_ok());
  ASSERT_TRUE(fs.remove(grandchild, "users/victim/documents/a.txt").is_ok());
  // The deletion points land on the family root.
  EXPECT_GT(engine.score(parent), 0);
  EXPECT_EQ(engine.score(parent), engine.score(child));
  EXPECT_EQ(engine.score(parent), engine.score(grandchild));
  fs.detach_filter(&engine);
}

TEST(FamilyScoring, SuspensionCoversTheWholeTree) {
  vfs::FileSystem fs;
  core::ScoringConfig config;
  config.score_threshold = 10;
  config.union_threshold = 10;
  core::AnalysisEngine engine(config);
  fs.attach_filter(&engine);
  const vfs::ProcessId parent = fs.register_process("dropper");
  const vfs::ProcessId child = fs.register_process("worker", parent);
  ASSERT_TRUE(fs.put_file_raw("users/victim/documents/a.txt",
                              to_bytes(std::string(2000, 'x'))).is_ok());
  ASSERT_TRUE(fs.remove(child, "users/victim/documents/a.txt").is_ok());
  ASSERT_TRUE(engine.is_suspended(child));
  EXPECT_TRUE(engine.is_suspended(parent));
  // A freshly spawned sibling is born suspended too.
  const vfs::ProcessId sibling = fs.register_process("worker2", parent);
  EXPECT_EQ(fs.write_file(sibling, "users/victim/documents/b.txt",
                          to_bytes("x")).code(),
            Errc::access_denied);
  fs.detach_filter(&engine);
}

TEST(FamilyScoring, UnrelatedProcessesUnaffected) {
  vfs::FileSystem fs;
  core::ScoringConfig config;
  config.score_threshold = 10;
  config.union_threshold = 10;
  core::AnalysisEngine engine(config);
  fs.attach_filter(&engine);
  const vfs::ProcessId bad = fs.register_process("bad");
  const vfs::ProcessId good = fs.register_process("good");
  ASSERT_TRUE(fs.put_file_raw("users/victim/documents/a.txt",
                              to_bytes(std::string(2000, 'x'))).is_ok());
  ASSERT_TRUE(fs.remove(bad, "users/victim/documents/a.txt").is_ok());
  ASSERT_TRUE(engine.is_suspended(bad));
  EXPECT_FALSE(engine.is_suspended(good));
  EXPECT_TRUE(fs.write_file(good, "users/victim/documents/b.txt",
                            to_bytes("fine")).is_ok());
  fs.detach_filter(&engine);
}

TEST(FamilyScoring, VfsParentTracking) {
  vfs::FileSystem fs;
  const vfs::ProcessId a = fs.register_process("a");
  const vfs::ProcessId b = fs.register_process("b", a);
  const vfs::ProcessId c = fs.register_process("c", b);
  EXPECT_EQ(fs.process_parent(a), 0u);
  EXPECT_EQ(fs.process_parent(b), a);
  EXPECT_EQ(fs.process_family_root(c), a);
  EXPECT_EQ(fs.process_family_root(a), a);
  // Unknown parent ids are detached instead of dangling.
  const vfs::ProcessId d = fs.register_process("d", 9999);
  EXPECT_EQ(fs.process_parent(d), 0u);
}

// --- dynamic scoring (§V-C) -----------------------------------------------

TEST_F(EvasionTest, DynamicScoringAcceleratesCtbLocker) {
  sim::SampleSpec ctb;
  ctb.family = "CTB-Locker";
  ctb.behavior = sim::BehaviorClass::B;
  ctb.profile = sim::family_profile("CTB-Locker", sim::BehaviorClass::B);
  ctb.seed = 8;

  core::ScoringConfig dynamic;
  dynamic.enable_dynamic_scoring = true;
  const auto boosted = harness::run_ransomware_sample(*env, ctb, dynamic);
  const auto stock = harness::run_ransomware_sample(*env, ctb, core::ScoringConfig{});
  EXPECT_TRUE(boosted.detected);
  EXPECT_LT(boosted.files_lost, stock.files_lost);
}

TEST_F(EvasionTest, DynamicScoringKeepsBenignSuiteClean) {
  // The paper worries dynamic scoring "may have an adverse effect on
  // false positives" — verify the thirty-app suite stays at one FP.
  core::ScoringConfig dynamic;
  dynamic.enable_dynamic_scoring = true;
  std::size_t false_positives = 0;
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    const auto r = harness::run_benign_workload(*env, workload, dynamic, 11);
    if (r.detected) {
      ++false_positives;
      EXPECT_TRUE(r.expected_false_positive) << r.app;
    }
  }
  EXPECT_EQ(false_positives, 1u);
}

TEST(DynamicScoring, BoostsTypeChangeOnlyWhenSimilarityUnavailable) {
  vfs::FileSystem fs;
  core::ScoringConfig config;
  config.score_threshold = 1000000;
  config.union_threshold = 1000000;
  config.enable_dynamic_scoring = true;
  core::AnalysisEngine engine(config);
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("p");
  Rng rng(9);

  // Small file: similarity unavailable -> boosted type-change points.
  ASSERT_TRUE(fs.put_file_raw("users/victim/documents/small.txt",
                              to_bytes(std::string(200, 'a') + "bcdef")).is_ok());
  auto h = fs.open(pid, "users/victim/documents/small.txt", vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(205)).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  const int boosted = engine.score(pid);
  EXPECT_EQ(boosted, static_cast<int>(config.points_type_change *
                                      config.dynamic_unavailable_boost));
  fs.detach_filter(&engine);
}

// --- shadow copies ---------------------------------------------------------

TEST_F(EvasionTest, ShadowCopyDeletionIsIgnoredByTheEngine) {
  // Populate the shadow-storage area, then run a sample that wipes it
  // first: those deletions are outside the documents root and score
  // nothing (the paper explicitly ignores them).
  vfs::FileSystem fs = env->base_fs.clone();
  Rng rng(10);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs.put_file_raw("system volume information/shadow/snap" +
                                    std::to_string(i) + ".vss",
                                rng.bytes(4096)).is_ok());
  }
  core::ScoringConfig config;
  core::AnalysisEngine engine(config);
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("tesla");
  sim::RansomwareProfile profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  profile.delete_shadow_copies = true;
  profile.max_files = 0;  // only the shadow wipe, no document attack
  sim::RansomwareSample sample(profile, 11);
  (void)sample.run(fs, pid, env->corpus.root);
  EXPECT_TRUE(fs.list_files_recursive("system volume information/shadow").empty());
  EXPECT_EQ(engine.score(pid), 0);
  fs.detach_filter(&engine);
}

// --- destroyed-bytes accounting --------------------------------------------

TEST_F(EvasionTest, BaselineDestroysEverythingItTouches) {
  const auto r = harness::run_ransomware_sample(*env, evader(12), core::ScoringConfig{});
  EXPECT_GT(r.sample.bytes_touched, 0u);
  EXPECT_EQ(r.sample.bytes_destroyed, r.sample.bytes_touched);
}

}  // namespace
}  // namespace cryptodrop
