// cryptodropd tests (ctest label: daemon): admission-control shedding
// order, tenant lifecycle under concurrent load, drain/shutdown
// determinism, the registry's double-attach invariant, overload
// behavior (shed, never block, never lose a ransomware verdict), and
// the parity gate — golden campaign + benign suite replayed through a
// live daemon by 8 concurrent tenants must produce bit-identical
// scoreboards. CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "daemon/control.hpp"
#include "daemon/daemon.hpp"
#include "daemon/queue.hpp"
#include "daemon/server.hpp"
#include "daemon/wire.hpp"
#include "harness/daemon_runner.hpp"
#include "harness/experiment.hpp"
#include "sim/benign/benign.hpp"
#include "sim/ransomware/families.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::daemon {
namespace {

vfs::TraceEntry read_entry() {
  vfs::TraceEntry entry;
  entry.op = vfs::OpType::read;
  entry.pid = 1;
  entry.handle = 1;
  return entry;
}

vfs::TraceEntry write_entry() {
  vfs::TraceEntry entry;
  entry.op = vfs::OpType::write;
  entry.pid = 1;
  entry.handle = 1;
  return entry;
}

QueueItem op_item(vfs::TraceEntry entry) {
  QueueItem item;
  item.entry = std::move(entry);
  return item;
}

// --- BoundedOpQueue: shedding order ------------------------------------

TEST(BoundedOpQueueTest, ReadClassIsShedFirstAtCapacity) {
  BoundedOpQueue queue(2);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  // Queue full of modify-class work: an incoming read is shed outright.
  const BoundedOpQueue::PushResult read_push = queue.push(op_item(read_entry()));
  EXPECT_FALSE(read_push.accepted);
  EXPECT_TRUE(read_push.shed_incoming);
  EXPECT_EQ(read_push.reason, ShedReason::benign_read);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(BoundedOpQueueTest, ModifyClassEvictsOldestQueuedRead) {
  BoundedOpQueue queue(2);
  EXPECT_TRUE(queue.push(op_item(read_entry())).accepted);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  const BoundedOpQueue::PushResult push = queue.push(op_item(write_entry()));
  EXPECT_TRUE(push.accepted);
  EXPECT_FALSE(push.shed_incoming);
  ASSERT_NE(push.evicted, nullptr);
  EXPECT_EQ(push.evicted->entry.op, vfs::OpType::read);
  EXPECT_EQ(push.reason, ShedReason::benign_read);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(BoundedOpQueueTest, ModifyClassShedsOnlyWhenNoReadCanMakeWay) {
  BoundedOpQueue queue(2);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  const BoundedOpQueue::PushResult push = queue.push(op_item(write_entry()));
  EXPECT_FALSE(push.accepted);
  EXPECT_TRUE(push.shed_incoming);
  EXPECT_EQ(push.reason, ShedReason::queue_full);
}

TEST(BoundedOpQueueTest, ReadOnlyOpenIsReadClassButWriteOpenIsNot) {
  vfs::TraceEntry ro;
  ro.op = vfs::OpType::open;
  ro.open_mode = vfs::kRead;
  EXPECT_TRUE(is_read_class(op_item(ro)));
  vfs::TraceEntry rw = ro;
  rw.open_mode = vfs::kRead | vfs::kWrite;
  EXPECT_FALSE(is_read_class(op_item(rw)));
}

TEST(BoundedOpQueueTest, SpawnsAreNeverShedEvenOverCapacity) {
  BoundedOpQueue queue(1);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  QueueItem spawn;
  spawn.is_spawn = true;
  spawn.spawn_pid = 2;
  const BoundedOpQueue::PushResult push = queue.push(std::move(spawn));
  EXPECT_TRUE(push.accepted);
  EXPECT_EQ(push.evicted, nullptr);
  EXPECT_EQ(queue.depth(), 2u);  // Over capacity by design.
}

// --- Daemon fixtures ---------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    env = new harness::Environment(
        harness::make_environment(harness::small_corpus_spec(200, 20), 123));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  static DaemonOptions small_options(std::size_t workers,
                                     std::size_t capacity) {
    DaemonOptions options;
    options.workers = workers;
    options.queue_capacity = capacity;
    return options;
  }

  /// A recorded encryptor run: golden result + the applied op stream.
  struct Recorded {
    harness::RansomwareRunResult result;
    std::vector<vfs::TraceEntry> entries;
  };

  static Recorded record_sample(const sim::SampleSpec& spec) {
    vfs::TraceRecorder recorder(/*capture_content=*/true);
    Recorded recorded;
    recorded.result = harness::run_ransomware_sample_filtered(
        *env, spec, core::ScoringConfig{}, &recorder);
    recorded.entries = recorder.entries();
    return recorded;
  }

  static sim::SampleSpec encryptor_spec() {
    sim::SampleSpec spec;
    spec.family = "TeslaCrypt";
    spec.behavior = sim::BehaviorClass::A;
    spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
    spec.profile.behavior = sim::BehaviorClass::A;
    spec.seed = 7;
    return spec;
  }

  /// Sends the recorded run's new processes to the daemon tenant.
  static void send_spawns(Daemon& daemon, const std::string& tenant,
                          const harness::RansomwareRunResult& result) {
    const std::size_t base = env->base_fs.process_count();
    for (const harness::ProcessRosterEntry& entry : result.roster) {
      if (entry.pid > base) {
        ASSERT_TRUE(daemon.spawn(tenant, entry.pid, entry.name, entry.parent)
                        .is_ok());
      }
    }
  }
};

harness::Environment* DaemonTest::env = nullptr;

// --- tenant lifecycle --------------------------------------------------

TEST_F(DaemonTest, AttachRejectsDuplicateAndEmptyIds) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  EXPECT_TRUE(daemon.attach("alpha").is_ok());
  const Status dup = daemon.attach("alpha");
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.code(), Errc::invalid_argument);
  EXPECT_FALSE(daemon.attach("").is_ok());
  EXPECT_TRUE(daemon.detach("alpha").is_ok());
  EXPECT_FALSE(daemon.detach("alpha").is_ok());  // Already gone.
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, RegistryAbortsOnDoubleInsert) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TenantRegistry registry;
  auto first = std::make_shared<TenantState>("twin", env->base_fs,
                                             core::ScoringConfig{});
  registry.insert(first);
  auto second = std::make_shared<TenantState>("twin", env->base_fs,
                                              core::ScoringConfig{});
  EXPECT_DEATH(registry.insert(second), "attached twice");
}

TEST_F(DaemonTest, AttachDetachUnderConcurrentSubmitLoad) {
  Daemon daemon(env->base_fs, small_options(4, 256));
  constexpr std::size_t kTenants = 6;
  constexpr std::size_t kBatches = 20;
  std::atomic<std::size_t> sent{0};
  std::atomic<std::size_t> shed_or_accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "load_" + std::to_string(t);
      ASSERT_TRUE(daemon.attach(tenant).is_ok());
      ASSERT_TRUE(daemon.spawn(tenant, 100, "writer", 0).is_ok());
      for (std::size_t batch = 0; batch < kBatches; ++batch) {
        std::vector<vfs::TraceEntry> entries(8, write_entry());
        for (vfs::TraceEntry& entry : entries) entry.pid = 100;
        const Result<SubmitResult> result =
            daemon.submit(tenant, std::move(entries));
        ASSERT_TRUE(result.is_ok());
        sent.fetch_add(8);
        shed_or_accepted.fetch_add(result.value().accepted +
                                   result.value().shed);
      }
      // Detach mid-stream on half the tenants: queued ops must be shed
      // as tenant_gone, not executed into a dead session.
      if (t % 2 == 0) {
        ASSERT_TRUE(daemon.detach(tenant).is_ok());
        const Result<SubmitResult> after =
            daemon.submit(tenant, {write_entry()});
        EXPECT_FALSE(after.is_ok());
        EXPECT_EQ(after.code(), Errc::not_found);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every submitted op got a decision, none silently vanished.
  EXPECT_EQ(sent.load(), shed_or_accepted.load());
  daemon.drain();
  daemon.shutdown(/*drain_first=*/true);
  const obs::MetricsSnapshot metrics = daemon.metrics();
  std::uint64_t executed = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  for (const obs::CounterSnapshot& counter : metrics.counters) {
    if (counter.name == "daemon_ops_executed_total") executed = counter.value;
    if (counter.name == "daemon_ops_ingested_total") ingested = counter.value;
    if (counter.name.rfind("daemon_ops_shed_total.", 0) == 0) {
      shed += counter.value;
    }
  }
  // spawns (6) + ops sent; every one either executed or counted shed.
  EXPECT_EQ(sent.load() + kTenants, executed + shed);
  EXPECT_LE(executed, ingested);
}

// --- drain / shutdown --------------------------------------------------

TEST_F(DaemonTest, DrainThenShutdownIsDeterministic) {
  const Recorded recorded = record_sample(encryptor_spec());
  std::string first_line;
  for (int round = 0; round < 2; ++round) {
    Daemon daemon(env->base_fs, small_options(3, 4096));
    ControlDispatcher dispatcher(daemon);
    ASSERT_TRUE(daemon.attach("replay").is_ok());
    send_spawns(daemon, "replay", recorded.result);
    ASSERT_TRUE(
        daemon.submit("replay", recorded.entries).is_ok());
    daemon.drain();
    const std::string line =
        dispatcher.handle_line("{\"type\":\"verdicts\",\"tenant\":\"replay\"}");
    if (round == 0) {
      first_line = line;
    } else {
      EXPECT_EQ(line, first_line);
    }
    daemon.shutdown(/*drain_first=*/true);
    EXPECT_TRUE(daemon.shutdown_complete());
    // Idempotent: a second shutdown (and the destructor's) is a no-op.
    daemon.shutdown(/*drain_first=*/false);
  }
  // The deterministic scoreboard matches the in-process golden run.
  const std::string expected =
      Json::object()
          .set("ok", true)
          .set("scoreboard", scoreboard_to_json(recorded.result.scoreboard))
          .to_string();
  EXPECT_EQ(first_line, expected);
}

TEST_F(DaemonTest, BatchedDrainMatchesSingleItemDrainBitForBit) {
  // Workers drain their queue in chunks of `drain_batch` (one lock
  // acquisition per chunk). Batching must be invisible to everything but
  // the lock: identical verdict scoreboard, conserved per-tenant
  // accounting, and strictly fewer queue-lock acquisitions than the
  // one-item-per-pop configuration.
  const Recorded recorded = record_sample(encryptor_spec());
  std::string lines[2];
  std::uint64_t batches[2] = {0, 0};
  const std::size_t batch_limits[2] = {1, 64};
  for (int round = 0; round < 2; ++round) {
    DaemonOptions options = small_options(2, 4096);
    options.drain_batch = batch_limits[round];
    Daemon daemon(env->base_fs, options);
    ControlDispatcher dispatcher(daemon);
    ASSERT_TRUE(daemon.attach("replay").is_ok());
    send_spawns(daemon, "replay", recorded.result);
    // Pause so the whole stream is queued before any worker wakes: the
    // batched round then provably drains in multi-item chunks.
    daemon.pause_workers();
    ASSERT_TRUE(daemon.submit("replay", recorded.entries).is_ok());
    daemon.resume_workers();
    daemon.drain();
    lines[round] =
        dispatcher.handle_line("{\"type\":\"verdicts\",\"tenant\":\"replay\"}");
    for (const obs::CounterSnapshot& c : daemon.metrics().counters) {
      if (c.name == "daemon_batches_drained_total") batches[round] = c.value;
    }
    const std::vector<TenantInfo> tenants = daemon.tenants();
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_EQ(tenants[0].ingested, tenants[0].executed + tenants[0].shed)
        << "batched drain lost or double-counted an op";
    daemon.shutdown(/*drain_first=*/true);
  }
  EXPECT_EQ(lines[0], lines[1]) << "drain_batch changed the scoreboard";
  EXPECT_GT(batches[0], 0u);
  EXPECT_GT(batches[1], 0u);
  EXPECT_LT(batches[1], batches[0])
      << "drain_batch=64 should amortise the queue lock across items";
}

TEST_F(DaemonTest, NonDrainedShutdownCountsDiscardedWork) {
  Daemon daemon(env->base_fs, small_options(1, 1024));
  ASSERT_TRUE(daemon.attach("doomed").is_ok());
  ASSERT_TRUE(daemon.spawn("doomed", 100, "writer", 0).is_ok());
  daemon.pause_workers();
  std::vector<vfs::TraceEntry> entries(50, write_entry());
  for (vfs::TraceEntry& entry : entries) entry.pid = 100;
  ASSERT_TRUE(daemon.submit("doomed", std::move(entries)).is_ok());
  daemon.resume_workers();
  daemon.shutdown(/*drain_first=*/false);
  const std::vector<TenantInfo> tenants = daemon.tenants();
  ASSERT_EQ(tenants.size(), 1u);
  // Nothing lost: every ingested item executed or was counted shed.
  EXPECT_EQ(tenants[0].ingested, tenants[0].executed + tenants[0].shed);
  // Submits after shutdown shed everything as `shutdown`.
  const Result<SubmitResult> late = daemon.submit("doomed", {write_entry()});
  ASSERT_TRUE(late.is_ok());
  EXPECT_EQ(late.value().accepted, 0u);
  EXPECT_EQ(late.value().shed, 1u);
}

// --- overload ----------------------------------------------------------

TEST_F(DaemonTest, OverloadShedsCountsEverythingAndKeepsVerdict) {
  const Recorded recorded = record_sample(encryptor_spec());
  ASSERT_TRUE(recorded.result.detected);
  // A queue far smaller than the combined load forces admission control.
  Daemon daemon(env->base_fs, small_options(1, 64));
  ASSERT_TRUE(daemon.attach("overload").is_ok());
  send_spawns(daemon, "overload", recorded.result);
  // A benign scanner hammering reads — the load the daemon is built to
  // shed first. Its reads reference a handle that was never opened, so
  // the ones that reach a worker resolve as dead-handle skips (the same
  // shed bucket), keeping the scenario deterministic.
  const vfs::ProcessId scanner = 100;
  ASSERT_TRUE(daemon.spawn("overload", scanner, "scanner", 0).is_ok());
  std::vector<vfs::TraceEntry> flood(500, read_entry());
  for (vfs::TraceEntry& entry : flood) {
    entry.pid = scanner;
    entry.handle = 9999;  // Never opened.
  }
  daemon.pause_workers();  // Deterministic overload: nothing drains yet.
  std::size_t accepted = 0;
  std::size_t shed = 0;
  // The suspicious stream is already queued when the flood lands. The
  // policy must hold it: incoming read-class ops are shed outright —
  // they never evict queued work — so nothing of the recorded sequence
  // is lost to the noise.
  const Result<SubmitResult> sample_result =
      daemon.submit("overload", recorded.entries);
  ASSERT_TRUE(sample_result.is_ok());  // submit never blocks, never fails.
  EXPECT_EQ(sample_result.value().accepted, recorded.entries.size());
  accepted += sample_result.value().accepted;
  shed += sample_result.value().shed;
  const std::size_t flood_size = flood.size();
  const Result<SubmitResult> flood_result =
      daemon.submit("overload", std::move(flood));
  ASSERT_TRUE(flood_result.is_ok());
  accepted += flood_result.value().accepted;
  shed += flood_result.value().shed;
  EXPECT_GT(shed, 0u) << "the flood must overflow a 64-slot queue";
  // Every submitted op got exactly one admission decision (no evictions
  // occur here: read-class ops shed instead of evicting).
  EXPECT_EQ(accepted + shed, recorded.entries.size() + flood_size);
  daemon.resume_workers();
  daemon.drain();
  const std::vector<TenantInfo> tenants = daemon.tenants();
  ASSERT_EQ(tenants.size(), 1u);
  const std::size_t spawns = 1 + recorded.result.roster.size() -
                             env->base_fs.process_count();
  // ...and after the drain, every decision is in exactly one bucket.
  EXPECT_EQ(flood_size + recorded.entries.size() + spawns,
            tenants[0].executed + tenants[0].shed);
  // The encryptor's suspension verdict survives shedding: dropped
  // benign reads cannot un-suspend a process scored on its writes.
  const Result<core::EngineSnapshot> verdicts = daemon.verdicts("overload");
  ASSERT_TRUE(verdicts.is_ok());
  bool suspended = false;
  for (const core::ProcessReport& report : verdicts.value().processes) {
    suspended = suspended || report.suspended;
  }
  EXPECT_TRUE(suspended);
  daemon.shutdown(/*drain_first=*/true);
}

// --- control API -------------------------------------------------------

TEST_F(DaemonTest, ControlApiEnvelopeAndErrors) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  ControlDispatcher dispatcher(daemon);
  EXPECT_EQ(dispatcher.handle_line("{\"type\":\"ping\"}"),
            "{\"ok\":true,\"pong\":true}");
  EXPECT_EQ(dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"t\"}"),
            "{\"ok\":true,\"tenant\":\"t\"}");
  const std::string dup =
      dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"t\"}");
  EXPECT_EQ(dup.rfind("{\"ok\":false", 0), 0u) << dup;
  EXPECT_EQ(dispatcher.handle_line("not json").rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(dispatcher.handle_line("{\"type\":\"nope\"}")
                .rfind("{\"ok\":false", 0),
            0u);
  // Request/error counters tally every line.
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  for (const obs::CounterSnapshot& counter : daemon.metrics().counters) {
    if (counter.name == "daemon_control_requests_total") {
      requests = counter.value;
    }
    if (counter.name == "daemon_control_errors_total") errors = counter.value;
  }
  EXPECT_EQ(requests, 5u);
  EXPECT_EQ(errors, 3u);
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, AttachConfigOverridesApply) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  ControlDispatcher dispatcher(daemon);
  dispatcher.handle_line(
      "{\"type\":\"attach\",\"tenant\":\"low\","
      "\"config\":{\"score_threshold\":50,\"union_threshold\":40}}");
  const Result<core::EngineSnapshot> verdicts = daemon.verdicts("low");
  ASSERT_TRUE(verdicts.is_ok());
  EXPECT_EQ(verdicts.value().default_threshold, 50);
  daemon.shutdown(/*drain_first=*/true);
}

// --- the parity gate ---------------------------------------------------

TEST_F(DaemonTest, EightTenantParityWithInProcessRuns) {
  std::vector<sim::SampleSpec> samples;
  const std::vector<sim::SampleSpec> zoo = sim::table1_samples(1);
  for (std::size_t i = 0; i < 6; ++i) {
    samples.push_back(zoo[(i * zoo.size()) / 6]);
  }
  std::vector<sim::BenignWorkload> benign = sim::all_benign_workloads();
  if (benign.size() > 4) benign.resize(4);

  DaemonOptions options = small_options(4, 4096);
  Daemon daemon(env->base_fs, options);
  ControlDispatcher dispatcher(daemon);
  const harness::TransportFactory factory = [&dispatcher] {
    return harness::Transport(
        [&dispatcher](const std::string& line) {
          return dispatcher.handle_line(line);
        });
  };
  harness::DaemonParityOptions parity;
  parity.concurrent_tenants = 8;
  const harness::DaemonParityReport report = harness::run_daemon_parity(
      *env, samples, benign, /*benign_seed=*/9, core::ScoringConfig{},
      factory, parity);
  EXPECT_EQ(report.trials.size(), samples.size() + benign.size());
  for (const harness::DaemonParityTrial& trial : report.trials) {
    EXPECT_TRUE(trial.match) << trial.label << " (" << trial.tenant
                             << ") diverged:\n golden: " << trial.golden_line
                             << "\n daemon: " << trial.daemon_line;
  }
  EXPECT_TRUE(report.all_match());
  // At least one ransomware trial must have carried a suspension
  // verdict through the daemon, or the gate proves nothing.
  bool any_detected = false;
  for (const harness::DaemonParityTrial& trial : report.trials) {
    any_detected = any_detected || trial.golden_detected;
  }
  EXPECT_TRUE(any_detected);
  daemon.shutdown(/*drain_first=*/true);
}

// --- socket transport --------------------------------------------------

TEST_F(DaemonTest, SocketServerRoundTripAndShutdown) {
  const std::string path =
      "/tmp/cryptodropd_test_" + std::to_string(::getpid()) + ".sock";
  Daemon daemon(env->base_fs, small_options(2, 256));
  SocketServer server(daemon, path);
  ASSERT_TRUE(server.start().is_ok());
  {
    DaemonClient client(path);
    const Result<std::string> pong = client.request("{\"type\":\"ping\"}");
    ASSERT_TRUE(pong.is_ok());
    EXPECT_EQ(pong.value(), "{\"ok\":true,\"pong\":true}");
    ASSERT_TRUE(
        client.request("{\"type\":\"attach\",\"tenant\":\"sock\"}").is_ok());
    ASSERT_TRUE(client
                    .request("{\"type\":\"spawn\",\"tenant\":\"sock\","
                             "\"pid\":100,\"name\":\"w\",\"parent\":0}")
                    .is_ok());
    const Result<std::string> verdicts =
        client.request("{\"type\":\"verdicts\",\"tenant\":\"sock\"}");
    ASSERT_TRUE(verdicts.is_ok());
    EXPECT_EQ(verdicts.value().rfind("{\"ok\":true,\"scoreboard\"", 0), 0u)
        << verdicts.value();
    const Result<std::string> stopped =
        client.request("{\"type\":\"shutdown\",\"drain\":true}");
    ASSERT_TRUE(stopped.is_ok());
    EXPECT_EQ(stopped.value(), "{\"ok\":true,\"stopped\":true}");
  }
  server.wait();  // The serve loop exits once the daemon is down.
  EXPECT_TRUE(daemon.shutdown_complete());
}

}  // namespace
}  // namespace cryptodrop::daemon
