// cryptodropd tests (ctest label: daemon): admission-control shedding
// order, tenant lifecycle under concurrent load, drain/shutdown
// determinism, the registry's double-attach invariant, overload
// behavior (shed, never block, never lose a ransomware verdict), and
// the parity gate — golden campaign + benign suite replayed through a
// live daemon by 8 concurrent tenants must produce bit-identical
// scoreboards. CI runs this binary under TSan.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "daemon/control.hpp"
#include "daemon/daemon.hpp"
#include "daemon/queue.hpp"
#include "daemon/server.hpp"
#include "daemon/wire.hpp"
#include "harness/daemon_runner.hpp"
#include "harness/experiment.hpp"
#include "sim/benign/benign.hpp"
#include "sim/ransomware/families.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::daemon {
namespace {

vfs::TraceEntry read_entry() {
  vfs::TraceEntry entry;
  entry.op = vfs::OpType::read;
  entry.pid = 1;
  entry.handle = 1;
  return entry;
}

vfs::TraceEntry write_entry() {
  vfs::TraceEntry entry;
  entry.op = vfs::OpType::write;
  entry.pid = 1;
  entry.handle = 1;
  return entry;
}

QueueItem op_item(vfs::TraceEntry entry) {
  QueueItem item;
  item.entry = std::move(entry);
  return item;
}

/// Raw AF_UNIX line client for the `watch` stream tests: unlike
/// DaemonClient (one request, one response) it keeps reading frames
/// the server pushes without a matching request.
class StreamClient {
 public:
  explicit StreamClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~StreamClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  StreamClient(const StreamClient&) = delete;
  StreamClient& operator=(const StreamClient&) = delete;

  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  bool send_line(const std::string& line) {
    const std::string framed = line + "\n";
    return ::write(fd_, framed.data(), framed.size()) ==
           static_cast<ssize_t>(framed.size());
  }

  /// Blocking read of the next full line. False on EOF or error.
  bool read_line(std::string* line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(got));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

// --- EventJournal: cursors, overflow, conservation ---------------------

TEST(EventJournalTest, CursorsStayMonotonicAcrossRingOverflow) {
  EventJournal journal(4);
  for (int i = 0; i < 10; ++i) {
    const EventJournal::AppendResult appended = journal.append(
        EventKind::shed_start, "t", 0, static_cast<double>(i), "");
    EXPECT_EQ(appended.cursor, static_cast<std::uint64_t>(i));
    EXPECT_EQ(appended.overwrote, i >= 4);
  }
  EXPECT_EQ(journal.emitted(), 10u);
  EXPECT_EQ(journal.overwritten(), 6u);
  // A reader starting at 0 sees the gap as an exact dropped count and
  // the surviving events in cursor order.
  const EventJournal::Drain drain = journal.since(0, "", 100);
  EXPECT_EQ(drain.dropped, 6u);
  ASSERT_EQ(drain.events.size(), 4u);
  for (std::size_t i = 0; i < drain.events.size(); ++i) {
    EXPECT_EQ(drain.events[i].cursor, 6u + i);
  }
  EXPECT_EQ(drain.next_cursor, 10u);
  // Following from next_cursor: nothing new, nothing dropped.
  const EventJournal::Drain again = journal.since(drain.next_cursor, "", 100);
  EXPECT_TRUE(again.events.empty());
  EXPECT_EQ(again.dropped, 0u);
  EXPECT_EQ(again.next_cursor, 10u);
}

TEST(EventJournalTest, PagedReaderConservesEmittedEqualsDeliveredPlusDropped) {
  EventJournal journal(8);
  for (int i = 0; i < 20; ++i) {
    journal.append(EventKind::shed_start, "t", 0, 0.0, "");
  }
  std::uint64_t cursor = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  for (;;) {
    const EventJournal::Drain drain = journal.since(cursor, "", 3);
    delivered += drain.events.size();
    dropped += drain.dropped;
    if (drain.next_cursor == cursor) break;  // Fully caught up.
    cursor = drain.next_cursor;
  }
  EXPECT_EQ(delivered + dropped, journal.emitted());
  EXPECT_EQ(delivered, journal.capacity());
  EXPECT_EQ(dropped, journal.overwritten());
}

TEST(EventJournalTest, TenantFilterSkipsButNeverRewindsTheCursor) {
  EventJournal journal(16);
  for (int i = 0; i < 6; ++i) {
    journal.append(EventKind::shed_start, i % 2 == 0 ? "a" : "b", 0, 0.0, "");
  }
  const EventJournal::Drain only_a = journal.since(0, "a", 100);
  ASSERT_EQ(only_a.events.size(), 3u);
  for (const JournalEvent& event : only_a.events) {
    EXPECT_EQ(event.tenant, "a");
  }
  // Filtered-out events still advance the cursor: a follower never
  // re-reads them.
  EXPECT_EQ(only_a.next_cursor, 6u);
  // Paging with a small max resumes exactly at the next matching event.
  const EventJournal::Drain first_page = journal.since(0, "a", 2);
  ASSERT_EQ(first_page.events.size(), 2u);
  const EventJournal::Drain second_page =
      journal.since(first_page.next_cursor, "a", 100);
  ASSERT_EQ(second_page.events.size(), 1u);
  EXPECT_EQ(second_page.events[0].cursor, 4u);
}

// --- BoundedOpQueue: shedding order ------------------------------------

TEST(BoundedOpQueueTest, ReadClassIsShedFirstAtCapacity) {
  BoundedOpQueue queue(2);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  // Queue full of modify-class work: an incoming read is shed outright.
  const BoundedOpQueue::PushResult read_push = queue.push(op_item(read_entry()));
  EXPECT_FALSE(read_push.accepted);
  EXPECT_TRUE(read_push.shed_incoming);
  EXPECT_EQ(read_push.reason, ShedReason::benign_read);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(BoundedOpQueueTest, ModifyClassEvictsOldestQueuedRead) {
  BoundedOpQueue queue(2);
  EXPECT_TRUE(queue.push(op_item(read_entry())).accepted);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  const BoundedOpQueue::PushResult push = queue.push(op_item(write_entry()));
  EXPECT_TRUE(push.accepted);
  EXPECT_FALSE(push.shed_incoming);
  ASSERT_NE(push.evicted, nullptr);
  EXPECT_EQ(push.evicted->entry.op, vfs::OpType::read);
  EXPECT_EQ(push.reason, ShedReason::benign_read);
  EXPECT_EQ(queue.depth(), 2u);
}

TEST(BoundedOpQueueTest, ModifyClassShedsOnlyWhenNoReadCanMakeWay) {
  BoundedOpQueue queue(2);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  const BoundedOpQueue::PushResult push = queue.push(op_item(write_entry()));
  EXPECT_FALSE(push.accepted);
  EXPECT_TRUE(push.shed_incoming);
  EXPECT_EQ(push.reason, ShedReason::queue_full);
}

TEST(BoundedOpQueueTest, ReadOnlyOpenIsReadClassButWriteOpenIsNot) {
  vfs::TraceEntry ro;
  ro.op = vfs::OpType::open;
  ro.open_mode = vfs::kRead;
  EXPECT_TRUE(is_read_class(op_item(ro)));
  vfs::TraceEntry rw = ro;
  rw.open_mode = vfs::kRead | vfs::kWrite;
  EXPECT_FALSE(is_read_class(op_item(rw)));
}

TEST(BoundedOpQueueTest, SpawnsAreNeverShedEvenOverCapacity) {
  BoundedOpQueue queue(1);
  EXPECT_TRUE(queue.push(op_item(write_entry())).accepted);
  QueueItem spawn;
  spawn.is_spawn = true;
  spawn.spawn_pid = 2;
  const BoundedOpQueue::PushResult push = queue.push(std::move(spawn));
  EXPECT_TRUE(push.accepted);
  EXPECT_EQ(push.evicted, nullptr);
  EXPECT_EQ(queue.depth(), 2u);  // Over capacity by design.
}

// --- Daemon fixtures ---------------------------------------------------

class DaemonTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    env = new harness::Environment(
        harness::make_environment(harness::small_corpus_spec(200, 20), 123));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  static DaemonOptions small_options(std::size_t workers,
                                     std::size_t capacity) {
    DaemonOptions options;
    options.workers = workers;
    options.queue_capacity = capacity;
    return options;
  }

  /// A recorded encryptor run: golden result + the applied op stream.
  struct Recorded {
    harness::RansomwareRunResult result;
    std::vector<vfs::TraceEntry> entries;
  };

  static Recorded record_sample(const sim::SampleSpec& spec) {
    vfs::TraceRecorder recorder(/*capture_content=*/true);
    Recorded recorded;
    recorded.result = harness::run_ransomware_sample_filtered(
        *env, spec, core::ScoringConfig{}, &recorder);
    recorded.entries = recorder.entries();
    return recorded;
  }

  static sim::SampleSpec encryptor_spec() {
    sim::SampleSpec spec;
    spec.family = "TeslaCrypt";
    spec.behavior = sim::BehaviorClass::A;
    spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
    spec.profile.behavior = sim::BehaviorClass::A;
    spec.seed = 7;
    return spec;
  }

  /// Sends the recorded run's new processes to the daemon tenant.
  static void send_spawns(Daemon& daemon, const std::string& tenant,
                          const harness::RansomwareRunResult& result) {
    const std::size_t base = env->base_fs.process_count();
    for (const harness::ProcessRosterEntry& entry : result.roster) {
      if (entry.pid > base) {
        ASSERT_TRUE(daemon.spawn(tenant, entry.pid, entry.name, entry.parent)
                        .is_ok());
      }
    }
  }
};

harness::Environment* DaemonTest::env = nullptr;

// --- tenant lifecycle --------------------------------------------------

TEST_F(DaemonTest, AttachRejectsDuplicateAndEmptyIds) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  EXPECT_TRUE(daemon.attach("alpha").is_ok());
  const Status dup = daemon.attach("alpha");
  EXPECT_FALSE(dup.is_ok());
  EXPECT_EQ(dup.code(), Errc::invalid_argument);
  EXPECT_FALSE(daemon.attach("").is_ok());
  EXPECT_TRUE(daemon.detach("alpha").is_ok());
  EXPECT_FALSE(daemon.detach("alpha").is_ok());  // Already gone.
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, RegistryAbortsOnDoubleInsert) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  TenantRegistry registry;
  auto first = std::make_shared<TenantState>("twin", env->base_fs,
                                             core::ScoringConfig{});
  registry.insert(first);
  auto second = std::make_shared<TenantState>("twin", env->base_fs,
                                              core::ScoringConfig{});
  EXPECT_DEATH(registry.insert(second), "attached twice");
}

TEST_F(DaemonTest, AttachDetachUnderConcurrentSubmitLoad) {
  Daemon daemon(env->base_fs, small_options(4, 256));
  constexpr std::size_t kTenants = 6;
  constexpr std::size_t kBatches = 20;
  std::atomic<std::size_t> sent{0};
  std::atomic<std::size_t> shed_or_accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kTenants);
  for (std::size_t t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      const std::string tenant = "load_" + std::to_string(t);
      ASSERT_TRUE(daemon.attach(tenant).is_ok());
      ASSERT_TRUE(daemon.spawn(tenant, 100, "writer", 0).is_ok());
      for (std::size_t batch = 0; batch < kBatches; ++batch) {
        std::vector<vfs::TraceEntry> entries(8, write_entry());
        for (vfs::TraceEntry& entry : entries) entry.pid = 100;
        const Result<SubmitResult> result =
            daemon.submit(tenant, std::move(entries));
        ASSERT_TRUE(result.is_ok());
        sent.fetch_add(8);
        shed_or_accepted.fetch_add(result.value().accepted +
                                   result.value().shed);
      }
      // Detach mid-stream on half the tenants: queued ops must be shed
      // as tenant_gone, not executed into a dead session.
      if (t % 2 == 0) {
        ASSERT_TRUE(daemon.detach(tenant).is_ok());
        const Result<SubmitResult> after =
            daemon.submit(tenant, {write_entry()});
        EXPECT_FALSE(after.is_ok());
        EXPECT_EQ(after.code(), Errc::not_found);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  // Every submitted op got a decision, none silently vanished.
  EXPECT_EQ(sent.load(), shed_or_accepted.load());
  daemon.drain();
  daemon.shutdown(/*drain_first=*/true);
  const obs::MetricsSnapshot metrics = daemon.metrics();
  std::uint64_t executed = 0;
  std::uint64_t ingested = 0;
  std::uint64_t shed = 0;
  for (const obs::CounterSnapshot& counter : metrics.counters) {
    if (counter.name == "daemon_ops_executed_total") executed = counter.value;
    if (counter.name == "daemon_ops_ingested_total") ingested = counter.value;
    if (counter.name.rfind("daemon_ops_shed_total.", 0) == 0) {
      shed += counter.value;
    }
  }
  // spawns (6) + ops sent; every one either executed or counted shed.
  EXPECT_EQ(sent.load() + kTenants, executed + shed);
  EXPECT_LE(executed, ingested);
}

// --- drain / shutdown --------------------------------------------------

TEST_F(DaemonTest, DrainThenShutdownIsDeterministic) {
  const Recorded recorded = record_sample(encryptor_spec());
  std::string first_line;
  for (int round = 0; round < 2; ++round) {
    Daemon daemon(env->base_fs, small_options(3, 4096));
    ControlDispatcher dispatcher(daemon);
    ASSERT_TRUE(daemon.attach("replay").is_ok());
    send_spawns(daemon, "replay", recorded.result);
    ASSERT_TRUE(
        daemon.submit("replay", recorded.entries).is_ok());
    daemon.drain();
    const std::string line =
        dispatcher.handle_line("{\"type\":\"verdicts\",\"tenant\":\"replay\"}");
    if (round == 0) {
      first_line = line;
    } else {
      EXPECT_EQ(line, first_line);
    }
    daemon.shutdown(/*drain_first=*/true);
    EXPECT_TRUE(daemon.shutdown_complete());
    // Idempotent: a second shutdown (and the destructor's) is a no-op.
    daemon.shutdown(/*drain_first=*/false);
  }
  // The deterministic scoreboard matches the in-process golden run.
  const std::string expected =
      Json::object()
          .set("ok", true)
          .set("scoreboard", scoreboard_to_json(recorded.result.scoreboard))
          .to_string();
  EXPECT_EQ(first_line, expected);
}

TEST_F(DaemonTest, BatchedDrainMatchesSingleItemDrainBitForBit) {
  // Workers drain their queue in chunks of `drain_batch` (one lock
  // acquisition per chunk). Batching must be invisible to everything but
  // the lock: identical verdict scoreboard, conserved per-tenant
  // accounting, and strictly fewer queue-lock acquisitions than the
  // one-item-per-pop configuration.
  const Recorded recorded = record_sample(encryptor_spec());
  std::string lines[2];
  std::uint64_t batches[2] = {0, 0};
  const std::size_t batch_limits[2] = {1, 64};
  for (int round = 0; round < 2; ++round) {
    DaemonOptions options = small_options(2, 4096);
    options.drain_batch = batch_limits[round];
    Daemon daemon(env->base_fs, options);
    ControlDispatcher dispatcher(daemon);
    ASSERT_TRUE(daemon.attach("replay").is_ok());
    send_spawns(daemon, "replay", recorded.result);
    // Pause so the whole stream is queued before any worker wakes: the
    // batched round then provably drains in multi-item chunks.
    daemon.pause_workers();
    ASSERT_TRUE(daemon.submit("replay", recorded.entries).is_ok());
    daemon.resume_workers();
    daemon.drain();
    lines[round] =
        dispatcher.handle_line("{\"type\":\"verdicts\",\"tenant\":\"replay\"}");
    for (const obs::CounterSnapshot& c : daemon.metrics().counters) {
      if (c.name == "daemon_batches_drained_total") batches[round] = c.value;
    }
    const std::vector<TenantInfo> tenants = daemon.tenants();
    ASSERT_EQ(tenants.size(), 1u);
    EXPECT_EQ(tenants[0].ingested, tenants[0].executed + tenants[0].shed)
        << "batched drain lost or double-counted an op";
    daemon.shutdown(/*drain_first=*/true);
  }
  EXPECT_EQ(lines[0], lines[1]) << "drain_batch changed the scoreboard";
  EXPECT_GT(batches[0], 0u);
  EXPECT_GT(batches[1], 0u);
  EXPECT_LT(batches[1], batches[0])
      << "drain_batch=64 should amortise the queue lock across items";
}

TEST_F(DaemonTest, NonDrainedShutdownCountsDiscardedWork) {
  Daemon daemon(env->base_fs, small_options(1, 1024));
  ASSERT_TRUE(daemon.attach("doomed").is_ok());
  ASSERT_TRUE(daemon.spawn("doomed", 100, "writer", 0).is_ok());
  daemon.pause_workers();
  std::vector<vfs::TraceEntry> entries(50, write_entry());
  for (vfs::TraceEntry& entry : entries) entry.pid = 100;
  ASSERT_TRUE(daemon.submit("doomed", std::move(entries)).is_ok());
  daemon.resume_workers();
  daemon.shutdown(/*drain_first=*/false);
  const std::vector<TenantInfo> tenants = daemon.tenants();
  ASSERT_EQ(tenants.size(), 1u);
  // Nothing lost: every ingested item executed or was counted shed.
  EXPECT_EQ(tenants[0].ingested, tenants[0].executed + tenants[0].shed);
  // Submits after shutdown shed everything as `shutdown`.
  const Result<SubmitResult> late = daemon.submit("doomed", {write_entry()});
  ASSERT_TRUE(late.is_ok());
  EXPECT_EQ(late.value().accepted, 0u);
  EXPECT_EQ(late.value().shed, 1u);
}

// --- overload ----------------------------------------------------------

TEST_F(DaemonTest, OverloadShedsCountsEverythingAndKeepsVerdict) {
  const Recorded recorded = record_sample(encryptor_spec());
  ASSERT_TRUE(recorded.result.detected);
  // A queue far smaller than the combined load forces admission control.
  Daemon daemon(env->base_fs, small_options(1, 64));
  ASSERT_TRUE(daemon.attach("overload").is_ok());
  send_spawns(daemon, "overload", recorded.result);
  // A benign scanner hammering reads — the load the daemon is built to
  // shed first. Its reads reference a handle that was never opened, so
  // the ones that reach a worker resolve as dead-handle skips (the same
  // shed bucket), keeping the scenario deterministic.
  const vfs::ProcessId scanner = 100;
  ASSERT_TRUE(daemon.spawn("overload", scanner, "scanner", 0).is_ok());
  std::vector<vfs::TraceEntry> flood(500, read_entry());
  for (vfs::TraceEntry& entry : flood) {
    entry.pid = scanner;
    entry.handle = 9999;  // Never opened.
  }
  daemon.pause_workers();  // Deterministic overload: nothing drains yet.
  std::size_t accepted = 0;
  std::size_t shed = 0;
  // The suspicious stream is already queued when the flood lands. The
  // policy must hold it: incoming read-class ops are shed outright —
  // they never evict queued work — so nothing of the recorded sequence
  // is lost to the noise.
  const Result<SubmitResult> sample_result =
      daemon.submit("overload", recorded.entries);
  ASSERT_TRUE(sample_result.is_ok());  // submit never blocks, never fails.
  EXPECT_EQ(sample_result.value().accepted, recorded.entries.size());
  accepted += sample_result.value().accepted;
  shed += sample_result.value().shed;
  const std::size_t flood_size = flood.size();
  const Result<SubmitResult> flood_result =
      daemon.submit("overload", std::move(flood));
  ASSERT_TRUE(flood_result.is_ok());
  accepted += flood_result.value().accepted;
  shed += flood_result.value().shed;
  EXPECT_GT(shed, 0u) << "the flood must overflow a 64-slot queue";
  // Every submitted op got exactly one admission decision (no evictions
  // occur here: read-class ops shed instead of evicting).
  EXPECT_EQ(accepted + shed, recorded.entries.size() + flood_size);
  daemon.resume_workers();
  daemon.drain();
  const std::vector<TenantInfo> tenants = daemon.tenants();
  ASSERT_EQ(tenants.size(), 1u);
  const std::size_t spawns = 1 + recorded.result.roster.size() -
                             env->base_fs.process_count();
  // ...and after the drain, every decision is in exactly one bucket.
  EXPECT_EQ(flood_size + recorded.entries.size() + spawns,
            tenants[0].executed + tenants[0].shed);
  // The encryptor's suspension verdict survives shedding: dropped
  // benign reads cannot un-suspend a process scored on its writes.
  const Result<core::EngineSnapshot> verdicts = daemon.verdicts("overload");
  ASSERT_TRUE(verdicts.is_ok());
  bool suspended = false;
  for (const core::ProcessReport& report : verdicts.value().processes) {
    suspended = suspended || report.suspended;
  }
  EXPECT_TRUE(suspended);
  daemon.shutdown(/*drain_first=*/true);
}

// --- control API -------------------------------------------------------

TEST_F(DaemonTest, ControlApiEnvelopeAndErrors) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  ControlDispatcher dispatcher(daemon);
  EXPECT_EQ(dispatcher.handle_line("{\"type\":\"ping\"}"),
            "{\"ok\":true,\"pong\":true}");
  EXPECT_EQ(dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"t\"}"),
            "{\"ok\":true,\"tenant\":\"t\"}");
  const std::string dup =
      dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"t\"}");
  EXPECT_EQ(dup.rfind("{\"ok\":false", 0), 0u) << dup;
  EXPECT_EQ(dispatcher.handle_line("not json").rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(dispatcher.handle_line("{\"type\":\"nope\"}")
                .rfind("{\"ok\":false", 0),
            0u);
  // Request/error counters tally every line.
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  for (const obs::CounterSnapshot& counter : daemon.metrics().counters) {
    if (counter.name == "daemon_control_requests_total") {
      requests = counter.value;
    }
    if (counter.name == "daemon_control_errors_total") errors = counter.value;
  }
  EXPECT_EQ(requests, 5u);
  EXPECT_EQ(errors, 3u);
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, AttachConfigOverridesApply) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  ControlDispatcher dispatcher(daemon);
  dispatcher.handle_line(
      "{\"type\":\"attach\",\"tenant\":\"low\","
      "\"config\":{\"score_threshold\":50,\"union_threshold\":40}}");
  const Result<core::EngineSnapshot> verdicts = daemon.verdicts("low");
  ASSERT_TRUE(verdicts.is_ok());
  EXPECT_EQ(verdicts.value().default_threshold, 50);
  daemon.shutdown(/*drain_first=*/true);
}

// --- operator telemetry: journal, health, control surface --------------

TEST_F(DaemonTest, JournalRecordsLifecycleAndSuspensionVerdicts) {
  const Recorded recorded = record_sample(encryptor_spec());
  ASSERT_TRUE(recorded.result.detected);
  Daemon daemon(env->base_fs, small_options(1, 4096));
  ASSERT_TRUE(daemon.attach("victim").is_ok());
  send_spawns(daemon, "victim", recorded.result);
  ASSERT_TRUE(daemon.submit("victim", recorded.entries).is_ok());
  daemon.drain();
  ASSERT_TRUE(daemon.detach("victim").is_ok());
  daemon.shutdown(/*drain_first=*/true);
  const EventJournal::Drain drain =
      daemon.telemetry().journal().since(0, "", 10000);
  std::set<EventKind> kinds;
  for (const JournalEvent& event : drain.events) kinds.insert(event.kind);
  EXPECT_TRUE(kinds.count(EventKind::worker_start));
  EXPECT_TRUE(kinds.count(EventKind::tenant_attach));
  EXPECT_TRUE(kinds.count(EventKind::suspension));
  EXPECT_TRUE(kinds.count(EventKind::tenant_detach));
  EXPECT_TRUE(kinds.count(EventKind::worker_stop));
  // The suspension event carries the verdict: tenant, score, process.
  for (const JournalEvent& event : drain.events) {
    if (event.kind != EventKind::suspension) continue;
    EXPECT_EQ(event.tenant, "victim");
    EXPECT_GT(event.value, 0.0);
    EXPECT_FALSE(event.detail.empty());
  }
  // The journal counter matches what the ring handed out.
  std::uint64_t journaled = 0;
  for (const obs::CounterSnapshot& counter : daemon.metrics().counters) {
    if (counter.name == "daemon_journal_events_total") {
      journaled = counter.value;
    }
  }
  EXPECT_EQ(journaled, daemon.telemetry().journal().emitted());
}

TEST_F(DaemonTest, HealthVerdictTracksOverloadEpisodeAndRecovery) {
  Daemon daemon(env->base_fs, small_options(1, 64));
  ASSERT_TRUE(daemon.attach("t").is_ok());
  ASSERT_TRUE(daemon.spawn("t", 100, "writer", 0).is_ok());
  EXPECT_EQ(daemon.health().level, HealthLevel::ok);
  // Flood a paused 64-slot queue far past capacity: occupancy pins at
  // 100% and the overload latch trips.
  daemon.pause_workers();
  std::vector<vfs::TraceEntry> flood(500, write_entry());
  for (vfs::TraceEntry& entry : flood) entry.pid = 100;
  ASSERT_TRUE(daemon.submit("t", std::move(flood)).is_ok());
  const HealthReport loaded = daemon.health();
  EXPECT_EQ(loaded.level, HealthLevel::overloaded);
  EXPECT_TRUE(loaded.overloaded);
  EXPECT_GE(loaded.queue_occupancy, 0.9);
  daemon.resume_workers();
  daemon.drain();
  // Hysteresis releases once the queues drain, but the flood's shed
  // ratio (>1% lifetime) keeps the verdict at degraded, not ok.
  const HealthReport drained = daemon.health();
  EXPECT_FALSE(drained.overloaded);
  EXPECT_EQ(drained.queue_depth, 0u);
  EXPECT_EQ(drained.level, HealthLevel::degraded);
  EXPECT_GT(drained.shed_ratio, 0.01);
  EXPECT_GT(drained.heartbeats, 0u);
  // The episode is journaled edge-triggered: one enter, one exit.
  const EventJournal::Drain events =
      daemon.telemetry().journal().since(0, "", 10000);
  std::size_t enters = 0;
  std::size_t exits = 0;
  for (const JournalEvent& event : events.events) {
    enters += event.kind == EventKind::overload_enter ? 1 : 0;
    exits += event.kind == EventKind::overload_exit ? 1 : 0;
  }
  EXPECT_EQ(enters, 1u);
  EXPECT_EQ(exits, 1u);
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, ControlEventsRequestPagesWithCursorsAndFilters) {
  Daemon daemon(env->base_fs, small_options(1, 64));
  ControlDispatcher dispatcher(daemon);
  // The lone worker journals worker_start from its own thread; wait for
  // it so every count below is deterministic.
  while (daemon.telemetry().journal().emitted() < 1) {
    std::this_thread::yield();
  }
  dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"a\"}");
  dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"b\"}");
  dispatcher.handle_line("{\"type\":\"detach\",\"tenant\":\"b\"}");
  const std::string all = dispatcher.handle_line("{\"type\":\"events\"}");
  const std::optional<JsonValue> parsed = parse_json(all);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->bool_or("ok", false));
  const JsonValue* events = parsed->find("events");
  ASSERT_NE(events, nullptr);
  // worker_start + attach a + attach b + detach b, cursor order.
  ASSERT_GE(events->items.size(), 4u);
  double last_cursor = -1.0;
  for (const JsonValue& event : events->items) {
    EXPECT_GT(event.number_or("cursor", -1.0), last_cursor);
    last_cursor = event.number_or("cursor", -1.0);
  }
  EXPECT_EQ(parsed->number_or("dropped", -1.0), 0.0);
  const double next_cursor = parsed->number_or("next_cursor", -1.0);
  EXPECT_EQ(next_cursor, static_cast<double>(
                             daemon.telemetry().journal().emitted()));
  // A follow-up from next_cursor is empty; a tenant filter sees only
  // that tenant's events.
  const std::string tail = dispatcher.handle_line(
      "{\"type\":\"events\",\"cursor\":" +
      std::to_string(static_cast<unsigned long long>(next_cursor)) + "}");
  const std::optional<JsonValue> tail_parsed = parse_json(tail);
  ASSERT_TRUE(tail_parsed.has_value());
  EXPECT_TRUE(tail_parsed->find("events")->items.empty());
  const std::string only_b = dispatcher.handle_line(
      "{\"type\":\"events\",\"tenant\":\"b\"}");
  const std::optional<JsonValue> b_parsed = parse_json(only_b);
  ASSERT_TRUE(b_parsed.has_value());
  const JsonValue* b_events = b_parsed->find("events");
  ASSERT_NE(b_events, nullptr);
  ASSERT_EQ(b_events->items.size(), 2u);  // attach b, detach b.
  for (const JsonValue& event : b_events->items) {
    EXPECT_EQ(event.string_or("tenant", ""), "b");
  }
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, ControlHealthAndWatchAcknowledgements) {
  Daemon daemon(env->base_fs, small_options(2, 64));
  ControlDispatcher dispatcher(daemon);
  // Wait for both workers' asynchronous worker_start appends so the
  // cursor arithmetic below is race-free.
  while (daemon.telemetry().journal().emitted() < 2) {
    std::this_thread::yield();
  }
  const std::string health = dispatcher.handle_line("{\"type\":\"health\"}");
  const std::optional<JsonValue> parsed = parse_json(health);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->bool_or("ok", false));
  const JsonValue* verdict = parsed->find("health");
  ASSERT_NE(verdict, nullptr);
  EXPECT_EQ(verdict->string_or("level", ""), "ok");
  EXPECT_EQ(verdict->number_or("workers", 0.0), 2.0);
  EXPECT_FALSE(verdict->string_or("reason", "").empty());
  // Without a streaming transport (the in-process dispatcher), `watch`
  // degrades to a plain acknowledgement.
  const std::string plain = dispatcher.handle_line("{\"type\":\"watch\"}");
  EXPECT_NE(plain.find("\"streaming\":false"), std::string::npos) << plain;
  // With one, the subscription carries the tenant filter and a cursor
  // defaulting to "now" (nothing historical replayed).
  dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"w\"}");
  WatchSubscription sub;
  const std::string streamed = dispatcher.handle_line(
      "{\"type\":\"watch\",\"tenant\":\"w\"}", &sub);
  EXPECT_NE(streamed.find("\"streaming\":true"), std::string::npos);
  EXPECT_TRUE(sub.requested);
  EXPECT_EQ(sub.tenant, "w");
  EXPECT_EQ(sub.cursor, daemon.telemetry().journal().emitted());
  // An explicit cursor wins over the default.
  WatchSubscription rewound;
  dispatcher.handle_line("{\"type\":\"watch\",\"cursor\":0}", &rewound);
  EXPECT_EQ(rewound.cursor, 0u);
  EXPECT_TRUE(rewound.tenant.empty());
  daemon.shutdown(/*drain_first=*/true);
}

TEST_F(DaemonTest, MetricsRequestFiltersByTenantAndRejectsUnknown) {
  Daemon daemon(env->base_fs, small_options(1, 64));
  ControlDispatcher dispatcher(daemon);
  dispatcher.handle_line("{\"type\":\"attach\",\"tenant\":\"known\"}");
  // Tenant-scoped: the tenant's engine registry, not the daemon's.
  const std::string scoped = dispatcher.handle_line(
      "{\"type\":\"metrics\",\"tenant\":\"known\"}");
  EXPECT_EQ(scoped.rfind("{\"ok\":true", 0), 0u) << scoped;
  EXPECT_NE(scoped.find("ops_observed_total"), std::string::npos);
  EXPECT_EQ(scoped.find("daemon_ops_ingested_total"), std::string::npos);
  // Unscoped: the daemon-wide registry.
  const std::string wide = dispatcher.handle_line("{\"type\":\"metrics\"}");
  EXPECT_NE(wide.find("daemon_ops_ingested_total"), std::string::npos);
  // Unknown tenants fail with a structured, machine-matchable code.
  const std::string unknown = dispatcher.handle_line(
      "{\"type\":\"metrics\",\"tenant\":\"ghost\"}");
  EXPECT_EQ(unknown.rfind("{\"ok\":false", 0), 0u) << unknown;
  EXPECT_NE(unknown.find("\"code\":\"not_found\""), std::string::npos)
      << unknown;
  daemon.shutdown(/*drain_first=*/true);
}

// --- the parity gate ---------------------------------------------------

TEST_F(DaemonTest, EightTenantParityWithInProcessRuns) {
  std::vector<sim::SampleSpec> samples;
  const std::vector<sim::SampleSpec> zoo = sim::table1_samples(1);
  for (std::size_t i = 0; i < 6; ++i) {
    samples.push_back(zoo[(i * zoo.size()) / 6]);
  }
  std::vector<sim::BenignWorkload> benign = sim::all_benign_workloads();
  if (benign.size() > 4) benign.resize(4);

  DaemonOptions options = small_options(4, 4096);
  Daemon daemon(env->base_fs, options);
  ControlDispatcher dispatcher(daemon);
  // A live watch subscriber rides the whole run over the socket
  // transport: streaming telemetry must be observation-only — the
  // parity gate below still demands bit-identical scoreboards.
  const std::string watch_path =
      "/tmp/cryptodropd_parity_" + std::to_string(::getpid()) + ".sock";
  ServerOptions server_options;
  server_options.frame_interval_ms = 10;
  SocketServer server(daemon, watch_path, server_options);
  ASSERT_TRUE(server.start().is_ok());
  std::atomic<std::uint64_t> frames_seen{0};
  std::atomic<bool> watch_ok{false};
  std::thread watch_thread([&] {
    StreamClient watcher(watch_path);
    if (!watcher.connected()) return;
    if (!watcher.send_line("{\"type\":\"watch\",\"cursor\":0}")) return;
    std::string frame;
    if (!watcher.read_line(&frame)) return;
    watch_ok.store(frame.rfind("{\"ok\":true,\"watch\"", 0) == 0);
    while (watcher.read_line(&frame)) frames_seen.fetch_add(1);
  });
  const harness::TransportFactory factory = [&dispatcher] {
    return harness::Transport(
        [&dispatcher](const std::string& line) {
          return dispatcher.handle_line(line);
        });
  };
  harness::DaemonParityOptions parity;
  parity.concurrent_tenants = 8;
  const harness::DaemonParityReport report = harness::run_daemon_parity(
      *env, samples, benign, /*benign_seed=*/9, core::ScoringConfig{},
      factory, parity);
  EXPECT_EQ(report.trials.size(), samples.size() + benign.size());
  for (const harness::DaemonParityTrial& trial : report.trials) {
    EXPECT_TRUE(trial.match) << trial.label << " (" << trial.tenant
                             << ") diverged:\n golden: " << trial.golden_line
                             << "\n daemon: " << trial.daemon_line;
  }
  EXPECT_TRUE(report.all_match());
  // At least one ransomware trial must have carried a suspension
  // verdict through the daemon, or the gate proves nothing.
  bool any_detected = false;
  for (const harness::DaemonParityTrial& trial : report.trials) {
    any_detected = any_detected || trial.golden_detected;
  }
  EXPECT_TRUE(any_detected);
  daemon.shutdown(/*drain_first=*/true);
  server.wait();  // The serve loop exits once the daemon is down...
  watch_thread.join();  // ...which ends the watcher's stream (EOF).
  EXPECT_TRUE(watch_ok.load());
  EXPECT_GT(frames_seen.load(), 0u);
}

// --- socket transport --------------------------------------------------

TEST_F(DaemonTest, SocketServerRoundTripAndShutdown) {
  const std::string path =
      "/tmp/cryptodropd_test_" + std::to_string(::getpid()) + ".sock";
  Daemon daemon(env->base_fs, small_options(2, 256));
  SocketServer server(daemon, path);
  ASSERT_TRUE(server.start().is_ok());
  {
    DaemonClient client(path);
    const Result<std::string> pong = client.request("{\"type\":\"ping\"}");
    ASSERT_TRUE(pong.is_ok());
    EXPECT_EQ(pong.value(), "{\"ok\":true,\"pong\":true}");
    ASSERT_TRUE(
        client.request("{\"type\":\"attach\",\"tenant\":\"sock\"}").is_ok());
    ASSERT_TRUE(client
                    .request("{\"type\":\"spawn\",\"tenant\":\"sock\","
                             "\"pid\":100,\"name\":\"w\",\"parent\":0}")
                    .is_ok());
    const Result<std::string> verdicts =
        client.request("{\"type\":\"verdicts\",\"tenant\":\"sock\"}");
    ASSERT_TRUE(verdicts.is_ok());
    EXPECT_EQ(verdicts.value().rfind("{\"ok\":true,\"scoreboard\"", 0), 0u)
        << verdicts.value();
    const Result<std::string> stopped =
        client.request("{\"type\":\"shutdown\",\"drain\":true}");
    ASSERT_TRUE(stopped.is_ok());
    EXPECT_EQ(stopped.value(), "{\"ok\":true,\"stopped\":true}");
  }
  server.wait();  // The serve loop exits once the daemon is down.
  EXPECT_TRUE(daemon.shutdown_complete());
}

// --- the watch stream --------------------------------------------------

TEST_F(DaemonTest, WatchStreamsEventAndStatsFramesThenClosesOnShutdown) {
  const std::string path =
      "/tmp/cryptodropd_watch_" + std::to_string(::getpid()) + ".sock";
  Daemon daemon(env->base_fs, small_options(2, 256));
  ServerOptions options;
  options.frame_interval_ms = 10;
  SocketServer server(daemon, path, options);
  ASSERT_TRUE(server.start().is_ok());
  StreamClient watcher(path);
  ASSERT_TRUE(watcher.connected());
  ASSERT_TRUE(watcher.send_line("{\"type\":\"watch\",\"cursor\":0}"));
  std::string line;
  ASSERT_TRUE(watcher.read_line(&line));
  EXPECT_EQ(line.rfind("{\"ok\":true,\"watch\"", 0), 0u) << line;
  EXPECT_NE(line.find("\"streaming\":true"), std::string::npos) << line;
  // Drive journal activity over a second, plain control connection.
  DaemonClient control(path);
  ASSERT_TRUE(
      control.request("{\"type\":\"attach\",\"tenant\":\"w\"}").is_ok());
  ASSERT_TRUE(
      control.request("{\"type\":\"detach\",\"tenant\":\"w\"}").is_ok());
  bool saw_attach = false;
  bool saw_stats = false;
  while ((!saw_attach || !saw_stats) && watcher.read_line(&line)) {
    if (line.find("\"frame\":\"event\"") != std::string::npos &&
        line.find("\"kind\":\"tenant_attach\"") != std::string::npos) {
      saw_attach = true;
    }
    if (line.find("\"frame\":\"stats\"") != std::string::npos) {
      EXPECT_NE(line.find("\"queue_depth\""), std::string::npos) << line;
      EXPECT_NE(line.find("\"health\""), std::string::npos) << line;
      saw_stats = true;
    }
  }
  EXPECT_TRUE(saw_attach);
  EXPECT_TRUE(saw_stats);
  // Shutdown while the watch is live: the stream ends in a clean EOF,
  // not a hang or an error mid-frame.
  ASSERT_TRUE(
      control.request("{\"type\":\"shutdown\",\"drain\":true}").is_ok());
  while (watcher.read_line(&line)) {
  }
  server.wait();
  EXPECT_TRUE(daemon.shutdown_complete());
}

TEST_F(DaemonTest, WatchConservationEmittedEqualsDeliveredPlusShed) {
  const std::string path =
      "/tmp/cryptodropd_conserve_" + std::to_string(::getpid()) + ".sock";
  Daemon daemon(env->base_fs, small_options(1, 256));
  ServerOptions options;
  options.frame_interval_ms = 5;
  SocketServer server(daemon, path, options);
  ASSERT_TRUE(server.start().is_ok());
  StreamClient watcher(path);
  ASSERT_TRUE(watcher.connected());
  // Subscribe from cursor 0: the stream owes us the journal's entire
  // history, so `emitted == delivered + shed` is checkable end to end.
  ASSERT_TRUE(watcher.send_line("{\"type\":\"watch\",\"cursor\":0}"));
  std::string line;
  ASSERT_TRUE(watcher.read_line(&line));
  ASSERT_EQ(line.rfind("{\"ok\":true,\"watch\"", 0), 0u) << line;
  DaemonClient control(path);
  for (int i = 0; i < 25; ++i) {
    const std::string tenant = "conserve_" + std::to_string(i);
    ASSERT_TRUE(
        control
            .request("{\"type\":\"attach\",\"tenant\":\"" + tenant + "\"}")
            .is_ok());
    ASSERT_TRUE(
        control
            .request("{\"type\":\"detach\",\"tenant\":\"" + tenant + "\"}")
            .is_ok());
  }
  // Read until the stream has caught up to the last detach before
  // shutting down — otherwise the whole burst lands between frame
  // ticks and is settled as shed, trivially satisfying the identity.
  std::uint64_t delivered = 0;
  bool caught_up = false;
  while (!caught_up && watcher.read_line(&line)) {
    if (line.rfind("{\"frame\":\"event\"", 0) == 0) {
      ++delivered;
      caught_up = line.find("\"kind\":\"tenant_detach\"") !=
                      std::string::npos &&
                  line.find("conserve_24") != std::string::npos;
    }
  }
  EXPECT_TRUE(caught_up);
  ASSERT_TRUE(
      control.request("{\"type\":\"shutdown\",\"drain\":true}").is_ok());
  while (watcher.read_line(&line)) {
    if (line.rfind("{\"frame\":\"event\"", 0) == 0) ++delivered;
  }
  server.wait();
  std::uint64_t shed = 0;
  for (const obs::CounterSnapshot& counter : daemon.metrics().counters) {
    if (counter.name == "daemon_watch_events_shed_total") {
      shed = counter.value;
    }
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_EQ(delivered + shed, daemon.telemetry().journal().emitted())
      << "delivered=" << delivered << " shed=" << shed;
}

TEST_F(DaemonTest, IdleConnectionsAreEvictedButWatchersAreExempt) {
  const std::string path =
      "/tmp/cryptodropd_idle_" + std::to_string(::getpid()) + ".sock";
  Daemon daemon(env->base_fs, small_options(1, 64));
  ServerOptions options;
  options.idle_timeout_ms = 50;
  options.frame_interval_ms = 10;
  SocketServer server(daemon, path, options);
  ASSERT_TRUE(server.start().is_ok());
  StreamClient watcher(path);
  ASSERT_TRUE(watcher.connected());
  ASSERT_TRUE(watcher.send_line("{\"type\":\"watch\"}"));
  std::string line;
  ASSERT_TRUE(watcher.read_line(&line));  // The ack.
  // A connection that never sends a byte is evicted at the deadline:
  // this read blocks until the server closes it (EOF), bounded by the
  // 50 ms idle timeout — a hang here fails the test's own timeout.
  StreamClient idle(path);
  ASSERT_TRUE(idle.connected());
  EXPECT_FALSE(idle.read_line(&line));
  std::uint64_t evicted = 0;
  for (const obs::CounterSnapshot& counter : daemon.metrics().counters) {
    if (counter.name == "daemon_conns_idle_closed_total") {
      evicted = counter.value;
    }
  }
  EXPECT_EQ(evicted, 1u);
  // The watcher outlived the deadline without sending anything further:
  // watch streams are write-mostly and exempt from the idle reaper.
  EXPECT_TRUE(watcher.read_line(&line)) << "watcher was evicted";
  DaemonClient control(path);
  ASSERT_TRUE(
      control.request("{\"type\":\"shutdown\",\"drain\":true}").is_ok());
  while (watcher.read_line(&line)) {
  }
  server.wait();
}

}  // namespace
}  // namespace cryptodrop::daemon
