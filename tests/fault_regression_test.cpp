// Failure-path regressions: reputation points may only be assessed for
// operations that actually happened. A write denied by a lower filter
// or failed by an injected fault must add zero points and zero
// entropy-mean weight; truncate is a scored modification; the entropy
// floor (EntropyConfig::min_score_bytes) keeps sub-threshold
// writes pointless; and the FaultPlan itself is validated, seeded and
// replayable.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "harness/chaos.hpp"
#include "harness/runner.hpp"
#include "sim/benign/benign.hpp"
#include "vfs/fault_filter.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop {
namespace {

using core::AnalysisEngine;
using core::ScoringConfig;

constexpr const char* kRoot = "users/victim/documents";

/// A stricter filter below the engine: denies every write in pre, so
/// the engine sees the failed outcome in its post callback.
class DenyWritesFilter : public vfs::Filter {
 public:
  vfs::Verdict pre_operation(const vfs::OperationEvent& event) override {
    return event.op == vfs::OpType::write ? vfs::Verdict::deny
                                          : vfs::Verdict::allow;
  }
};

std::uint64_t counter_value(const AnalysisEngine& engine, std::string_view name) {
  const obs::CounterSnapshot* c = engine.metrics_snapshot().counter(name);
  return c == nullptr ? 0 : c->value;
}

// The behavior under test (denied writes score nothing, truncate is
// scored, fault replay) holds in every build; the *counter* assertions
// need recording, which -DCRYPTODROP_NO_METRICS compiles out, so those
// are gated on obs::kMetricsEnabled.
constexpr bool kCounted = obs::kMetricsEnabled;

class FaultRegressionTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  ScoringConfig config;
  std::unique_ptr<AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{42};

  void SetUp() override { config.protected_root = kRoot; }

  void attach() {
    config.union_threshold = std::min(config.union_threshold, config.score_threshold);
    ASSERT_TRUE(config.validate().is_ok());
    engine = std::make_unique<AnalysisEngine>(config);
    fs.attach_filter(engine.get());
    pid = fs.register_process("suspect");
  }

  std::string doc(const std::string& name) { return std::string(kRoot) + "/" + name; }

  void put_prose(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, to_bytes(synth_prose(rng, n))).is_ok());
  }
};

// --- writes that never happened score nothing ---------------------------

TEST_F(FaultRegressionTest, DeniedWriteAddsNoPointsAndNoEntropyWeight) {
  attach();
  DenyWritesFilter deny;
  fs.attach_filter(&deny);  // below the engine

  put_prose(doc("a.txt"), 20000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  const auto original = fs.read_unfiltered(doc("a.txt"));
  ASSERT_NE(original, nullptr);

  // Ten high-entropy overwrite attempts, all denied below the engine.
  auto h = fs.open(pid, doc("a.txt"), vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fs.write(pid, h.value(), rng.bytes(8192)).code(),
              Errc::access_denied);
  }
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
  EXPECT_EQ(counter_value(*engine, "indicator_events_total.entropy_delta"), 0u);
  EXPECT_EQ(*fs.read_unfiltered(doc("a.txt")), *original);

  // If any denied write had fed the write-entropy mean, rewriting the
  // file's own prose (delta ~ 0 on honest means) would now earn entropy
  // points against the polluted mean.
  fs.detach_filter(&deny);
  ASSERT_TRUE(fs.write_file(pid, doc("a.txt"), ByteView(*original)).is_ok());
  EXPECT_EQ(counter_value(*engine, "indicator_events_total.entropy_delta"), 0u);
  EXPECT_EQ(engine->score(pid), 0);

  fs.detach_filter(engine.get());
}

TEST_F(FaultRegressionTest, FaultedWriteAddsNoPointsAndNoEntropyWeight) {
  attach();
  vfs::FaultPlan plan;
  plan.seed = 7;
  plan.write.io_error = 1.0;  // every write fails below the engine
  vfs::FaultInjectionFilter faults(plan);
  fs.attach_filter(&faults);

  put_prose(doc("a.txt"), 20000);
  ASSERT_TRUE(fs.read_file(pid, doc("a.txt")).is_ok());
  const auto original = fs.read_unfiltered(doc("a.txt"));

  auto h = fs.open(pid, doc("a.txt"), vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fs.write(pid, h.value(), rng.bytes(8192)).code(), Errc::io_error);
  }
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
  EXPECT_EQ(counter_value(*engine, "indicator_events_total.entropy_delta"), 0u);
  if (kCounted) {
    EXPECT_EQ(faults.faults_injected(vfs::FaultKind::io_error), 10u);
  }
  EXPECT_EQ(*fs.read_unfiltered(doc("a.txt")), *original);

  fs.detach_filter(&faults);
  ASSERT_TRUE(fs.write_file(pid, doc("a.txt"), ByteView(*original)).is_ok());
  EXPECT_EQ(counter_value(*engine, "indicator_events_total.entropy_delta"), 0u);
  EXPECT_EQ(engine->score(pid), 0);

  fs.detach_filter(engine.get());
}

TEST_F(FaultRegressionTest, ShortWriteScoresOnlyTheSurvivingPrefix) {
  attach();
  vfs::FaultPlan plan;
  plan.seed = 11;
  plan.write.short_write = 1.0;
  vfs::FaultInjectionFilter faults(plan);
  fs.attach_filter(&faults);

  auto h = fs.open(pid, doc("out.bin"), vfs::kCreate);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(8192)).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());

  // The file holds a strict prefix of the requested bytes; the engine
  // survived scoring a post event whose data is smaller than `length`.
  const auto content = fs.read_unfiltered(doc("out.bin"));
  ASSERT_NE(content, nullptr);
  EXPECT_GT(content->size(), 0u);
  EXPECT_LT(content->size(), 8192u);
  if (kCounted) {
    EXPECT_EQ(faults.faults_injected(vfs::FaultKind::short_write), 1u);
  }

  fs.detach_filter(&faults);
  fs.detach_filter(engine.get());
}

// --- truncate is a scored modification ----------------------------------

TEST_F(FaultRegressionTest, TruncateThenRewriteIsCaught) {
  // The truncate-then-rewrite encryptor: clear the file, write
  // ciphertext, close. The pre-image is snapshotted at the truncate, so
  // type-change and similarity-drop fire exactly as for an in-place
  // overwrite.
  config.score_threshold = 60;
  attach();
  for (int i = 0; i < 20; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 15000);

  for (int i = 0; i < 20 && !engine->is_suspended(pid); ++i) {
    const std::string path = doc("f" + std::to_string(i) + ".txt");
    auto data = fs.read_file(pid, path);
    if (!data.is_ok()) break;
    auto h = fs.open(pid, path, vfs::kWrite);
    if (!h.is_ok()) break;
    ASSERT_TRUE(fs.truncate(pid, h.value(), 0).is_ok());
    (void)fs.write(pid, h.value(), rng.bytes(data.value().size()));
    ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  }
  EXPECT_TRUE(engine->is_suspended(pid));
  if (kCounted) {
    EXPECT_GT(counter_value(*engine, "indicator_events_total.type_change"), 0u);
  }
  fs.detach_filter(engine.get());
}

TEST_F(FaultRegressionTest, TruncateToZeroIsObservedWithoutCrashing) {
  // Truncate-to-zero and close: the post-image is empty, so similarity
  // digesting degrades (nothing to digest) instead of crashing, and the
  // degraded-measurement counter says so.
  attach();
  put_prose(doc("a.txt"), 15000);
  auto h = fs.open(pid, doc("a.txt"), vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.truncate(pid, h.value(), 0).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(fs.read_unfiltered(doc("a.txt"))->size(), 0u);
  if (kCounted) {
    EXPECT_GE(counter_value(*engine, "baselines_captured_total"), 1u);
    EXPECT_GE(counter_value(*engine, "degraded_measurements_total"), 1u);
  }
  fs.detach_filter(engine.get());
}

// --- entropy floor cutoff -----------------------------------------------

TEST_F(FaultRegressionTest, EntropyMinScoreBytesGatesTinyWrites) {
  // Same tiny-high-entropy-write workload under two configs: the default
  // floor (1 byte) assesses entropy points, a 128-byte floor assesses
  // none — the one-point floor of scaled_entropy_points no longer turns
  // dribbles of random bytes into reputation.
  auto entropy_events_for = [&](std::size_t min_bytes) {
    vfs::FileSystem local_fs;
    ScoringConfig cfg;
    cfg.protected_root = kRoot;
    cfg.entropy.min_score_bytes = min_bytes;
    cfg.union_threshold = std::min(cfg.union_threshold, cfg.score_threshold);
    AnalysisEngine eng(cfg);
    local_fs.attach_filter(&eng);
    const vfs::ProcessId p = local_fs.register_process("dribbler");
    Rng local_rng(5);
    EXPECT_TRUE(local_fs
                    .put_file_raw(std::string(kRoot) + "/a.txt",
                                  to_bytes(synth_prose(local_rng, 20000)))
                    .is_ok());
    EXPECT_TRUE(local_fs.read_file(p, std::string(kRoot) + "/a.txt").is_ok());
    auto h = local_fs.open(p, std::string(kRoot) + "/drip.bin", vfs::kCreate);
    EXPECT_TRUE(h.is_ok());
    // 64 random bytes measure ~5.8 bits/byte — above the prose read
    // mean, below the full-points size: exactly the floor-point regime.
    for (int i = 0; i < 40; ++i) {
      EXPECT_TRUE(local_fs.write(p, h.value(), local_rng.bytes(64)).is_ok());
    }
    EXPECT_TRUE(local_fs.close(p, h.value()).is_ok());
    const std::uint64_t events =
        counter_value(eng, "indicator_events_total.entropy_delta");
    local_fs.detach_filter(&eng);
    return events;
  };
  if (kCounted) {
    EXPECT_GT(entropy_events_for(1), 0u);
  }
  EXPECT_EQ(entropy_events_for(128), 0u);
}

TEST(EntropyFloorSuiteTest, RaisedFloorAddsNoBenignFalsePositives) {
  // The floor only removes points, so the benign suite's false-positive
  // set must not grow when it is raised to a realistic sector-ish size.
  corpus::CorpusSpec spec;
  spec.total_files = 300;
  spec.total_dirs = 30;
  spec.compute_hashes = false;
  const harness::Environment env = harness::make_environment(spec, 123);
  const auto workloads = sim::all_benign_workloads();

  core::ScoringConfig raised;
  raised.entropy.min_score_bytes = 64;
  const auto defaults = harness::run_benign_suite_parallel(
      env, workloads, core::ScoringConfig{}, 9);
  const auto floored =
      harness::run_benign_suite_parallel(env, workloads, raised, 9);
  ASSERT_EQ(defaults.size(), floored.size());
  for (std::size_t i = 0; i < floored.size(); ++i) {
    EXPECT_LE(floored[i].final_score, defaults[i].final_score)
        << floored[i].app;
    if (floored[i].detected) {
      EXPECT_TRUE(defaults[i].detected)
          << floored[i].app << " became a false positive under the floor";
    }
  }
}

TEST_F(FaultRegressionTest, EntropyMinScoreBytesIsValidated) {
  ScoringConfig cfg;
  cfg.entropy.min_score_bytes = cfg.entropy.full_points_bytes + 1;
  EXPECT_FALSE(cfg.validate().is_ok());
  cfg.entropy.min_score_bytes = cfg.entropy.full_points_bytes;
  EXPECT_TRUE(cfg.validate().is_ok());
}

// --- FaultPlan mechanics ------------------------------------------------

TEST(FaultPlanTest, ValidateRejectsOutOfRangeRates) {
  EXPECT_TRUE(vfs::FaultPlan{}.validate().is_ok());
  EXPECT_TRUE(vfs::FaultPlan::uniform(0.25, 9).validate().is_ok());
  vfs::FaultPlan bad;
  bad.write.io_error = 1.5;
  EXPECT_FALSE(bad.validate().is_ok());
  bad.write.io_error = -0.1;
  EXPECT_FALSE(bad.validate().is_ok());
  bad.write.io_error = 0.0;
  bad.close.delay_post = 2.0;
  EXPECT_FALSE(bad.validate().is_ok());
  EXPECT_THROW(vfs::FaultInjectionFilter{bad}, std::invalid_argument);
}

TEST(FaultPlanTest, UniformQuartersTheDenialRate) {
  const vfs::FaultPlan plan = vfs::FaultPlan::uniform(0.2, 1);
  EXPECT_DOUBLE_EQ(plan.write.io_error, 0.2);
  EXPECT_DOUBLE_EQ(plan.write.short_write, 0.2);
  EXPECT_DOUBLE_EQ(plan.read.short_write, 0.0);
  EXPECT_DOUBLE_EQ(plan.open.access_denied, 0.05);
  EXPECT_DOUBLE_EQ(plan.close.delay_post, 0.2);
}

TEST(FaultPlanTest, ReseededMixesSaltDeterministically) {
  vfs::FaultPlan plan = vfs::FaultPlan::uniform(0.1, 99);
  EXPECT_EQ(plan.reseeded(5).seed, plan.reseeded(5).seed);
  EXPECT_NE(plan.reseeded(5).seed, plan.reseeded(6).seed);
  EXPECT_NE(plan.reseeded(5).seed, plan.seed);
  // Only the seed changes; the schedule survives.
  EXPECT_DOUBLE_EQ(plan.reseeded(5).write.io_error, plan.write.io_error);
}

TEST(FaultPlanTest, SameSeedSameFaultSequence) {
  // Two filters from the same plan over the same op stream inject the
  // same faults at the same ops — the replayability contract.
  auto run_once = [](std::uint64_t seed) {
    vfs::FileSystem fs;
    vfs::FaultPlan plan = vfs::FaultPlan::uniform(0.3, seed);
    vfs::FaultInjectionFilter filter(plan);
    fs.attach_filter(&filter);
    const vfs::ProcessId p = fs.register_process("w");
    Rng rng(1);
    std::vector<int> outcomes;
    for (int i = 0; i < 50; ++i) {
      const std::string path = "dir/f" + std::to_string(i);
      outcomes.push_back(static_cast<int>(fs.write_file(p, path, rng.bytes(64)).code()));
    }
    fs.detach_filter(&filter);
    return std::pair{outcomes, filter.faults_injected()};
  };
  const auto [outcomes_a, injected_a] = run_once(77);
  const auto [outcomes_b, injected_b] = run_once(77);
  const auto [outcomes_c, injected_c] = run_once(78);
  EXPECT_EQ(outcomes_a, outcomes_b);
  EXPECT_EQ(injected_a, injected_b);
  if (kCounted) {
    EXPECT_GT(injected_a, 0u);
  }
  EXPECT_NE(outcomes_a, outcomes_c);
}

TEST(FaultPlanTest, FaultKindNamesAreStable) {
  EXPECT_EQ(vfs::fault_kind_name(vfs::FaultKind::io_error), "io_error");
  EXPECT_EQ(vfs::fault_kind_name(vfs::FaultKind::access_denied), "access_denied");
  EXPECT_EQ(vfs::fault_kind_name(vfs::FaultKind::short_write), "short_write");
  EXPECT_EQ(vfs::fault_kind_name(vfs::FaultKind::delay_post), "delay_post");
}

}  // namespace
}  // namespace cryptodrop
