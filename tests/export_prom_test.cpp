// Tests for the Prometheus text-exposition exporter
// (src/obs/export_prom.hpp): golden round trips for all three metric
// kinds, escaping, determinism under registration order and thread
// count, and bidirectional family parity with obs::known_metric_names().
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "daemon/metrics.hpp"
#include "obs/export_prom.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "vfs/fault_filter.hpp"

namespace cryptodrop::obs {
namespace {

TEST(ExportPromTest, GoldenTextForAllThreeKinds) {
  MetricsRegistry registry;
  Counter& plain = registry.counter("test_ops_total", "Ops processed.", "ops");
  Counter& shed_q =
      registry.counter("test_shed_total.queue_full", "Sheds by reason.", "ops");
  Counter& shed_b =
      registry.counter("test_shed_total.benign", "Sheds by reason.", "ops");
  Gauge& depth = registry.gauge("test_depth", "Current depth.", "items");
  Histogram& latency =
      registry.histogram("test_latency_us", "Latency.", "us", {1.0, 2.0, 4.0});
  plain.add(3);
  shed_q.add(2);
  shed_b.add(1);
  depth.set(2.5);
  latency.record(1);    // le="1"
  latency.record(3);    // le="4"
  latency.record(100);  // overflow -> +Inf only
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_EQ(text,
            "# HELP test_ops_total Ops processed.\n"
            "# TYPE test_ops_total counter\n"
            "test_ops_total 3\n"
            "# HELP test_shed_total Sheds by reason.\n"
            "# TYPE test_shed_total counter\n"
            "test_shed_total{label=\"benign\"} 1\n"
            "test_shed_total{label=\"queue_full\"} 2\n"
            "# HELP test_depth Current depth.\n"
            "# TYPE test_depth gauge\n"
            "test_depth 2.5\n"
            "# HELP test_latency_us Latency.\n"
            "# TYPE test_latency_us histogram\n"
            "test_latency_us_bucket{le=\"1\"} 1\n"
            "test_latency_us_bucket{le=\"2\"} 1\n"
            "test_latency_us_bucket{le=\"4\"} 2\n"
            "test_latency_us_bucket{le=\"+Inf\"} 3\n"
            "test_latency_us_sum 104\n"
            "test_latency_us_count 3\n");
}

TEST(ExportPromTest, KnownPlaceholderFamiliesGetTheirTokenAsLabelKey) {
  daemon::DaemonMetrics metrics;
  metrics.shed(daemon::ShedReason::queue_full).add(7);
  const std::string text = to_prometheus(metrics.snapshot());
  EXPECT_NE(text.find("daemon_ops_shed_total{shed_reason=\"queue_full\"} 7"),
            std::string::npos)
      << text;
  // Flat families render without a selector.
  EXPECT_NE(text.find("\ndaemon_ops_ingested_total 0\n"), std::string::npos);
}

TEST(ExportPromTest, HelpAndLabelEscaping) {
  EXPECT_EQ(prom_escape_help("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(prom_escape_label("say \"hi\"\\now\n"), "say \\\"hi\\\"\\\\now\\n");
  EXPECT_EQ(prom_family_name("stage_latency_us.entropy"), "stage_latency_us");
  EXPECT_EQ(prom_family_name("weird-name.suffix"), "weird_name");

  MetricsRegistry registry;
  registry.counter("esc_total.a\"b\\c", "multi\nline \\help", "x").add(1);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# HELP esc_total multi\\nline \\\\help\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("esc_total{label=\"a\\\"b\\\\c\"} 1\n"),
            std::string::npos)
      << text;
  // Escaping keeps the document line-structured: exactly one newline
  // per emitted line, none embedded mid-line by the raw inputs.
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) ++count;
  EXPECT_EQ(count, 3u);
}

TEST(ExportPromTest, OutputIsDeterministicAcrossRegistrationOrder) {
  const auto build = [](bool reversed) {
    auto registry = std::make_unique<MetricsRegistry>();
    const std::vector<std::string> names = {"zeta_total", "alpha_total",
                                            "mid_total.b", "mid_total.a"};
    if (!reversed) {
      for (const std::string& name : names) {
        registry->counter(name, "help", "x").add(5);
      }
    } else {
      for (auto it = names.rbegin(); it != names.rend(); ++it) {
        registry->counter(*it, "help", "x").add(5);
      }
    }
    registry->gauge("g", "help", "x").set(1.25);
    registry->histogram("h_us", "help", "us", {1.0, 2.0}).record(2);
    return registry;
  };
  EXPECT_EQ(to_prometheus(build(false)->snapshot()),
            to_prometheus(build(true)->snapshot()));
}

TEST(ExportPromTest, OutputIsDeterministicOneVsEightThreads) {
  const auto run = [](std::size_t threads) {
    auto registry = std::make_unique<MetricsRegistry>();
    Counter& ops = registry->counter("jobs_total", "help", "ops");
    Histogram& lat =
        registry->histogram("jobs_us", "help", "us", {1.0, 4.0, 16.0});
    const std::size_t per_thread = 80 / threads;
    std::vector<std::thread> pool;
    for (std::size_t t = 0; t < threads; ++t) {
      // Thread t records its slice of the same global value multiset,
      // so only the interleaving varies with the thread count.
      pool.emplace_back([&ops, &lat, per_thread, t] {
        for (std::size_t i = 0; i < per_thread; ++i) {
          ops.add();
          lat.record(static_cast<double>((t * per_thread + i) % 20));
        }
      });
    }
    for (std::thread& worker : pool) worker.join();
    return to_prometheus(registry->snapshot());
  };
  EXPECT_EQ(run(1), run(8));
}

TEST(ExportPromTest, FamilyParityWithKnownMetricNamesBothWays) {
  // The exporter must emit exactly the families the schema of record
  // implies — rendered over everything a fresh engine, fault filter
  // and daemon front end register (the same trio docs_check pins).
  const core::AnalysisEngine engine{core::ScoringConfig{}};
  const vfs::FaultInjectionFilter filter{vfs::FaultPlan{}};
  const daemon::DaemonMetrics daemon_metrics;
  std::string rendered;
  for (const MetricsSnapshot& snap :
       {engine.metrics_snapshot(), filter.metrics_snapshot(),
        daemon_metrics.snapshot()}) {
    rendered += to_prometheus(snap);
  }
  std::set<std::string> emitted;
  std::istringstream lines(rendered);
  std::string line;
  while (std::getline(lines, line)) {
    const std::string prefix = "# TYPE ";
    if (line.rfind(prefix, 0) != 0) continue;
    emitted.insert(line.substr(prefix.size(), line.find(' ', prefix.size()) -
                                                  prefix.size()));
  }
  std::set<std::string> expected;
  for (std::string_view name : known_metric_names()) {
    expected.insert(prom_family_name(name));
  }
  EXPECT_EQ(emitted, expected);
}

TEST(ExportPromTest, OutputParsesAsValidExposition) {
  // Structural validation of a real registry's dump: every line is a
  // comment or `name{...} value`, every sample's family has exactly one
  // HELP and TYPE above it, histogram buckets are cumulative.
  daemon::DaemonMetrics metrics;
  metrics.ingested().add(12);
  metrics.worker_ingest_latency_us().record(3);
  metrics.worker_ingest_latency_us().record(900);
  const std::string text = to_prometheus(metrics.snapshot());
  std::istringstream lines(text);
  std::string line;
  std::set<std::string> typed;
  std::uint64_t last_bucket = 0;
  bool in_buckets = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::string family =
          line.substr(7, line.find(' ', 7) - 7);
      EXPECT_TRUE(typed.insert(family).second)
          << "family typed twice: " << family;
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string series = line.substr(0, space);
    const std::string family =
        series.substr(0, series.find_first_of("{ "));
    // Strip _bucket/_sum/_count to find the declaring family.
    std::string base = family;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0 &&
          typed.count(base) == 0) {
        const std::string candidate = base.substr(0, base.size() - s.size());
        if (typed.count(candidate) != 0) base = candidate;
      }
    }
    EXPECT_TRUE(typed.count(base) != 0) << "sample before TYPE: " << line;
    if (family.size() > 7 &&
        family.compare(family.size() - 7, 7, "_bucket") == 0) {
      const std::uint64_t value =
          std::strtoull(line.c_str() + space + 1, nullptr, 10);
      if (in_buckets) {
        EXPECT_GE(value, last_bucket) << "buckets not cumulative: " << line;
      }
      last_bucket = value;
      in_buckets = line.find("le=\"+Inf\"") == std::string::npos;
    } else {
      in_buckets = false;
      last_bucket = 0;
    }
  }
}

}  // namespace
}  // namespace cryptodrop::obs
