// Concurrency coverage for the sharded AnalysisEngine (DESIGN.md §9).
//
// The event streams here are driven straight through the Filter
// interface from multiple threads — the multi-threaded-VFS scenario the
// scoreboard/file shards exist for. The streams stick to read, write
// and remove events, which never consult the attached FileSystem, so no
// engine is attached to one (the in-memory FileSystem itself stays
// single-threaded by contract).
//
// Build with -DCRYPTODROP_SANITIZE=thread to run this file (and the
// whole suite) under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "simhash/digest_cache.hpp"

namespace cryptodrop::core {
namespace {

constexpr const char* kRoot = "users/victim/documents";

std::string doc(vfs::ProcessId pid, std::size_t i) {
  return std::string(kRoot) + "/t" + std::to_string(pid) + "/f" +
         std::to_string(i) + ".txt";
}

vfs::OperationEvent event(vfs::OpType op, vfs::ProcessId pid, vfs::FileId file,
                          std::string path, ByteView data = {}) {
  vfs::OperationEvent ev;
  ev.op = op;
  ev.pid = pid;
  ev.process_name = "worker" + std::to_string(pid);
  ev.path = std::move(path);
  ev.file_id = file;
  ev.data = data;
  return ev;
}

/// One thread's deterministic workload: alternating plaintext reads and
/// high-entropy writes (entropy-delta scoring), plus removals (deletion
/// scoring). Payload buffers live in the struct so event ByteViews stay
/// valid for the test's lifetime.
struct ThreadScript {
  vfs::ProcessId pid = 0;
  std::vector<Bytes> payloads;
  std::vector<vfs::OperationEvent> events;

  explicit ThreadScript(vfs::ProcessId p, std::size_t rounds) : pid(p) {
    Rng rng(1000 + p);
    payloads.reserve(rounds * 2);
    for (std::size_t i = 0; i < rounds; ++i) {
      payloads.push_back(to_bytes(synth_prose(rng, 6000)));
      payloads.push_back(rng.bytes(6000));  // ciphertext stand-in
    }
    for (std::size_t i = 0; i < rounds; ++i) {
      const vfs::FileId id = p * 10000 + i + 1;
      events.push_back(event(vfs::OpType::read, p, id, doc(p, i),
                             ByteView(payloads[i * 2])));
      events.push_back(event(vfs::OpType::write, p, id, doc(p, i),
                             ByteView(payloads[i * 2 + 1])));
      events.push_back(event(vfs::OpType::remove, p, id, doc(p, i)));
    }
  }

  void run(AnalysisEngine& engine) const {
    for (const vfs::OperationEvent& ev : events) {
      // Mirror the VFS: pre callback, apply, post callback on success.
      if (engine.pre_operation(ev) == vfs::Verdict::allow) {
        engine.post_operation(ev, Status::ok());
      }
    }
  }
};

ScoringConfig stress_config() {
  ScoringConfig config;
  config.protected_root = kRoot;
  config.enable_family_scoring = false;  // no FileSystem attached
  config.score_threshold = 1'000'000;
  config.union_threshold = 1'000'000;
  config.record_timeline = false;  // op_seq interleaving is schedule-dependent
  return config;
}

TEST(EngineConcurrency, ParallelDriversMatchSerialReplay) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRounds = 40;

  std::vector<ThreadScript> scripts;
  for (std::size_t t = 0; t < kThreads; ++t) {
    scripts.emplace_back(static_cast<vfs::ProcessId>(t + 1), kRounds);
  }

  AnalysisEngine parallel(stress_config());
  {
    std::vector<std::thread> pool;
    for (const ThreadScript& script : scripts) {
      pool.emplace_back([&script, &parallel] { script.run(parallel); });
    }
    for (std::thread& t : pool) t.join();
  }

  AnalysisEngine serial(stress_config());
  for (const ThreadScript& script : scripts) script.run(serial);

  const EngineSnapshot got = parallel.snapshot();
  const EngineSnapshot want = serial.snapshot();
  EXPECT_EQ(got.observed_ops, want.observed_ops);
  ASSERT_EQ(got.processes.size(), kThreads);
  ASSERT_EQ(want.processes.size(), kThreads);
  for (std::size_t i = 0; i < kThreads; ++i) {
    const ProcessReport& g = got.processes[i];
    const ProcessReport& w = want.processes[i];
    EXPECT_EQ(g.pid, w.pid);
    // Distinct pids have independent scoreboard state, so cross-thread
    // interleaving must not be observable in any per-process number.
    EXPECT_EQ(g.score, w.score) << "pid " << g.pid;
    EXPECT_EQ(g.entropy_events, w.entropy_events) << "pid " << g.pid;
    EXPECT_EQ(g.deletion_events, w.deletion_events) << "pid " << g.pid;
    EXPECT_EQ(g.funneling_events, w.funneling_events) << "pid " << g.pid;
    EXPECT_DOUBLE_EQ(g.read_entropy_mean, w.read_entropy_mean) << "pid " << g.pid;
    EXPECT_DOUBLE_EQ(g.write_entropy_mean, w.write_entropy_mean) << "pid " << g.pid;
    EXPECT_EQ(g.suspended, w.suspended);
  }
}

TEST(EngineConcurrency, SharedPidScoresCommutativelyAndAlertsOnce) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRemoves = 50;

  ScoringConfig config = stress_config();
  // Deletion points are order-independent (fixed 14 per event), so the
  // contended total is exact; the threshold sits mid-stream so exactly
  // one of the racing threads must win the suspension.
  config.score_threshold = static_cast<int>(kThreads * kRemoves * 14 / 2);
  config.union_threshold = config.score_threshold;
  AnalysisEngine engine(config);

  std::atomic<int> alert_count{0};
  engine.set_alert_callback([&](const Alert& alert) {
    ++alert_count;
    EXPECT_EQ(alert.pid, 1u);
    EXPECT_GE(alert.score, alert.threshold);
  });

  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([t, &engine] {
      for (std::size_t i = 0; i < kRemoves; ++i) {
        const vfs::FileId id = t * 1000 + i + 1;
        const vfs::OperationEvent ev =
            event(vfs::OpType::remove, /*pid=*/1, id, doc(1, t * 1000 + i));
        (void)engine.pre_operation(ev);
        engine.post_operation(ev, Status::ok());
      }
    });
  }
  for (std::thread& t : pool) t.join();

  EXPECT_EQ(alert_count.load(), 1);
  const ProcessReport report = engine.snapshot().report_for(1);
  EXPECT_TRUE(report.suspended);
  EXPECT_EQ(report.deletion_events, kThreads * kRemoves);
  EXPECT_EQ(report.score, static_cast<int>(kThreads * kRemoves * 14));
}

TEST(EngineConcurrency, SnapshotsAreInternallyConsistentUnderLoad) {
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kRemoves = 300;

  ScoringConfig config = stress_config();
  config.record_timeline = true;  // per-pid timeline: schedule-independent sums
  AnalysisEngine engine(config);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([t, &engine] {
      const auto pid = static_cast<vfs::ProcessId>(t + 1);
      for (std::size_t i = 0; i < kRemoves; ++i) {
        const vfs::OperationEvent ev =
            event(vfs::OpType::remove, pid, t * 1000 + i + 1, doc(pid, i));
        (void)engine.pre_operation(ev);
        engine.post_operation(ev, Status::ok());
      }
    });
  }

  std::thread reader([&] {
    std::uint64_t last_ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const EngineSnapshot snap = engine.snapshot();
      EXPECT_GE(snap.observed_ops, last_ops);  // ops never run backwards
      last_ops = snap.observed_ops;
      for (const ProcessReport& report : snap.processes) {
        // A torn read would break score == sum(timeline points).
        int total = 0;
        for (const ScoreEvent& ev : report.timeline) total += ev.points;
        EXPECT_EQ(report.score, total) << "pid " << report.pid;
        EXPECT_EQ(report.deletion_events, report.timeline.size());
      }
    }
  });

  for (std::thread& t : writers) t.join();
  stop.store(true);
  reader.join();

  const EngineSnapshot final_snap = engine.snapshot();
  ASSERT_EQ(final_snap.processes.size(), kWriters);
  for (const ProcessReport& report : final_snap.processes) {
    EXPECT_EQ(report.deletion_events, kRemoves);
  }
}

TEST(EngineConcurrency, DigestCacheIsSharedSafelyAcrossThreads) {
  simhash::DigestCache cache(/*capacity=*/64);
  Rng rng(7);
  const Bytes big = to_bytes(synth_prose(rng, 4096));
  const Bytes small = to_bytes("too small for sdhash");

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLookups = 50;
  std::vector<std::thread> pool;
  for (std::size_t t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = 0; i < kLookups; ++i) {
        const auto digest = cache.get_or_compute(ByteView(big));
        ASSERT_TRUE(digest.has_value());
        // Cached digest must be the digest of *this* content.
        const auto direct = simhash::SimilarityDigest::compute(ByteView(big));
        EXPECT_EQ(digest->compare(*direct), 100);
        // Negative results (undigestable content) are cached too.
        EXPECT_FALSE(cache.get_or_compute(ByteView(small)).has_value());
      }
    });
  }
  for (std::thread& t : pool) t.join();

  const simhash::DigestCacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kLookups * 2);
  // Every lookup after the initial fills (racing threads may each miss
  // once per key before the first insert lands) is a hit.
  EXPECT_GE(stats.hits, kThreads * kLookups * 2 - 2 * kThreads);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(EngineConcurrency, DigestCacheEvictsAtCapacity) {
  simhash::DigestCache cache(/*capacity=*/16);  // 1 entry per shard
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    (void)cache.get_or_compute(ByteView(rng.bytes(1024)));
  }
  const simhash::DigestCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 64u);
  EXPECT_LE(stats.entries, 16u);
  EXPECT_EQ(stats.evictions, 64u - stats.entries);
}

}  // namespace
}  // namespace cryptodrop::core
