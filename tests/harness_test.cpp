// Tests for the experiment harness: environment construction, sample
// runs, aggregation (Table I rows, Figure 3/5 data), and text tables.
#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace cryptodrop::harness {
namespace {

class HarnessTest : public ::testing::Test {
 protected:
  static Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 400;
    spec.total_dirs = 40;
    spec.compute_hashes = false;
    env = new Environment(make_environment(spec, 123));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  sim::SampleSpec spec_for(const std::string& family, sim::BehaviorClass cls,
                           std::uint64_t seed) {
    sim::SampleSpec s;
    s.family = family;
    s.behavior = cls;
    s.profile = sim::family_profile(family, cls);
    s.profile.behavior = cls;
    s.seed = seed;
    return s;
  }
};

Environment* HarnessTest::env = nullptr;

TEST_F(HarnessTest, EnvironmentMatchesSpec) {
  EXPECT_EQ(env->corpus.file_count(), 400u);
  EXPECT_EQ(env->base_fs.file_count(), 400u);
  EXPECT_EQ(env->corpus.root, env->spec.root);
}

TEST_F(HarnessTest, RunDetectsAndCountsLoss) {
  const auto r = run_ransomware_sample(*env, spec_for("TeslaCrypt", sim::BehaviorClass::A, 9),
                                       core::ScoringConfig{});
  EXPECT_TRUE(r.detected);
  EXPECT_GT(r.files_lost, 0u);
  EXPECT_LT(r.files_lost, env->corpus.file_count() / 4);
  EXPECT_FALSE(r.sample.ran_to_completion);
  EXPECT_GT(r.final_score, 0);
}

TEST_F(HarnessTest, RunLeavesBaseEnvironmentPristine) {
  (void)run_ransomware_sample(*env, spec_for("Xorist", sim::BehaviorClass::A, 10),
                              core::ScoringConfig{});
  EXPECT_EQ(corpus::count_files_lost(env->base_fs, env->corpus), 0u);
  EXPECT_EQ(env->base_fs.file_count(), 400u);
}

TEST_F(HarnessTest, RunsAreIndependentAndDeterministic) {
  const auto spec = spec_for("CryptoWall", sim::BehaviorClass::C, 11);
  const auto r1 = run_ransomware_sample(*env, spec, core::ScoringConfig{});
  const auto r2 = run_ransomware_sample(*env, spec, core::ScoringConfig{});
  EXPECT_EQ(r1.files_lost, r2.files_lost);
  EXPECT_EQ(r1.final_score, r2.final_score);
  EXPECT_EQ(r1.union_triggered, r2.union_triggered);
}

TEST_F(HarnessTest, DirectoriesTouchedAreUnderRoot) {
  const auto r = run_ransomware_sample(*env, spec_for("GPcode", sim::BehaviorClass::A, 12),
                                       core::ScoringConfig{});
  EXPECT_FALSE(r.directories_touched.empty());
  for (const std::string& dir : r.directories_touched) {
    EXPECT_TRUE(vfs::path_is_under(dir, env->corpus.root)) << dir;
  }
}

TEST_F(HarnessTest, ExtensionsAccessedAreCorpusExtensions) {
  const auto r = run_ransomware_sample(
      *env, spec_for("TeslaCrypt", sim::BehaviorClass::A, 13), core::ScoringConfig{});
  EXPECT_FALSE(r.extensions_accessed.empty());
  // Artifact extensions (.vvv, note .txt is a corpus ext though) must be
  // filtered to the corpus mix.
  for (const std::string& ext : r.extensions_accessed) {
    EXPECT_NE(ext, "vvv");
  }
}

TEST_F(HarnessTest, CampaignRunsAllSpecsWithProgress) {
  std::vector<sim::SampleSpec> specs = {
      spec_for("Xorist", sim::BehaviorClass::A, 20),
      spec_for("Virlock", sim::BehaviorClass::C, 21),
      spec_for("CTB-Locker", sim::BehaviorClass::B, 22),
  };
  std::size_t calls = 0;
  const auto results = run_campaign(*env, specs, core::ScoringConfig{},
                                    [&](std::size_t done, std::size_t total) {
                                      ++calls;
                                      EXPECT_LE(done, total);
                                    });
  EXPECT_EQ(results.size(), 3u);
  EXPECT_EQ(calls, 3u);
  for (const auto& r : results) EXPECT_TRUE(r.detected);
}

TEST_F(HarnessTest, AggregateTable1GroupsByFamily) {
  std::vector<RansomwareRunResult> results;
  auto mk = [](const std::string& family, sim::BehaviorClass cls, std::size_t lost) {
    RansomwareRunResult r;
    r.family = family;
    r.behavior = cls;
    r.files_lost = lost;
    return r;
  };
  results.push_back(mk("X", sim::BehaviorClass::A, 4));
  results.push_back(mk("X", sim::BehaviorClass::A, 8));
  results.push_back(mk("X", sim::BehaviorClass::B, 9));
  results.push_back(mk("Y", sim::BehaviorClass::C, 3));
  const auto rows = aggregate_table1(results);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].family, "X");
  EXPECT_EQ(rows[0].class_a, 2u);
  EXPECT_EQ(rows[0].class_b, 1u);
  EXPECT_EQ(rows[0].total, 3u);
  EXPECT_DOUBLE_EQ(rows[0].median_files_lost, 8.0);
  EXPECT_EQ(rows[1].family, "Y");
  EXPECT_EQ(rows[1].class_c, 1u);
  EXPECT_DOUBLE_EQ(rows[1].median_files_lost, 3.0);
}

TEST_F(HarnessTest, FilesLostValuesPreserveOrder) {
  std::vector<RansomwareRunResult> results(3);
  results[0].files_lost = 5;
  results[1].files_lost = 1;
  results[2].files_lost = 9;
  const auto values = files_lost_values(results);
  EXPECT_EQ(values, (std::vector<double>{5, 1, 9}));
}

TEST_F(HarnessTest, ExtensionFrequencySortsByCount) {
  std::vector<RansomwareRunResult> results(3);
  results[0].extensions_accessed = {"pdf", "txt"};
  results[1].extensions_accessed = {"pdf"};
  results[2].extensions_accessed = {"pdf", "txt", "jpg"};
  const auto freq = extension_frequency(results);
  ASSERT_EQ(freq.size(), 3u);
  EXPECT_EQ(freq[0].first, "pdf");
  EXPECT_EQ(freq[0].second, 3u);
  EXPECT_EQ(freq[1].first, "txt");
  EXPECT_EQ(freq[2].first, "jpg");
}

TEST_F(HarnessTest, SmallCorpusSpecHelper) {
  const auto spec = small_corpus_spec(50, 8);
  EXPECT_EQ(spec.total_files, 50u);
  EXPECT_EQ(spec.total_dirs, 8u);
}

// --- text table rendering -----------------------------------------------

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"Name", "Count"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("Name   Count"), std::string::npos);
  EXPECT_NE(out.find("alpha  1"), std::string::npos);
  EXPECT_NE(out.find("b      22"), std::string::npos);
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"A", "B", "C"});
  table.add_row({"x"});
  EXPECT_NO_THROW((void)table.to_string());
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(fmt_double(6.5, 1), "6.5");
  EXPECT_EQ(fmt_double(10.0, 1), "10");
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.3028), "30.28%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace cryptodrop::harness
