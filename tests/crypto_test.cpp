// Known-answer and property tests for the crypto substrate.
#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/aes.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "crypto/xor_cipher.hpp"
#include "entropy/entropy.hpp"

namespace cryptodrop::crypto {
namespace {

Bytes from_hex(std::string_view h) {
  auto b = hex_decode(h);
  EXPECT_TRUE(b.has_value()) << h;
  return b.value_or(Bytes{});
}

// --- ChaCha20 ----------------------------------------------------------

TEST(ChaCha20, Rfc8439BlockFunctionVector) {
  // RFC 8439 §2.3.2: key 00..1f, nonce 000000090000004a00000000, ctr 1.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000090000004a00000000");
  ChaCha20 cipher(key, nonce, /*counter=*/1);
  const Bytes stream = cipher.keystream(64);
  EXPECT_EQ(hex_encode(ByteView(stream)),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, Rfc8439EncryptionVectorPrefix) {
  // RFC 8439 §2.4.2: the "sunscreen" plaintext, counter 1.
  Bytes key(32);
  for (int i = 0; i < 32; ++i) key[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  const Bytes nonce = from_hex("000000000000004a00000000");
  const std::string plaintext =
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.";
  ChaCha20 cipher(key, nonce, /*counter=*/1);
  const Bytes ct = cipher.transform(to_bytes(plaintext));
  EXPECT_EQ(hex_encode(ByteView(ct).first(32)),
            "6e2e359a2568f98041ba0728dd0d6981"
            "e97e7aec1d4360c20a27afccfd9fae0b");
}

TEST(ChaCha20, EncryptDecryptRoundTrip) {
  Rng rng(1);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes plain = rng.bytes(5000);
  const Bytes ct = chacha20_encrypt(key, nonce, plain);
  EXPECT_NE(ct, plain);
  EXPECT_EQ(chacha20_encrypt(key, nonce, ct), plain);
}

TEST(ChaCha20, CiphertextIsHighEntropy) {
  const Bytes key = to_bytes("k");
  const Bytes nonce = to_bytes("n");
  const Bytes plain(100000, 'A');  // zero-entropy plaintext
  const Bytes ct = chacha20_encrypt(key, nonce, plain);
  EXPECT_GT(entropy::shannon(ByteView(ct)), 7.9);
}

TEST(ChaCha20, DifferentNoncesDifferentStreams) {
  const Bytes key = to_bytes("same-key");
  const Bytes p(64, 0);
  const Bytes a = chacha20_encrypt(key, to_bytes("nonce-1"), p);
  const Bytes b = chacha20_encrypt(key, to_bytes("nonce-2"), p);
  EXPECT_NE(a, b);
}

TEST(ChaCha20, StreamingMatchesOneShot) {
  Rng rng(2);
  const Bytes key = rng.bytes(32);
  const Bytes nonce = rng.bytes(12);
  const Bytes plain = rng.bytes(1000);
  ChaCha20 whole(key, nonce);
  const Bytes expected = whole.transform(plain);
  ChaCha20 chunked(key, nonce);
  Bytes out;
  for (std::size_t off = 0; off < plain.size(); off += 33) {
    const std::size_t n = std::min<std::size_t>(33, plain.size() - off);
    Bytes part = chunked.transform(ByteView(plain).subspan(off, n));
    append(out, ByteView(part));
  }
  EXPECT_EQ(out, expected);
}

// --- AES ------------------------------------------------------------------

TEST(Aes128, Fips197KnownAnswer) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  Bytes block = from_hex("00112233445566778899aabbccddeeff");
  Aes128 aes(key);
  aes.encrypt_block(block.data());
  EXPECT_EQ(hex_encode(ByteView(block)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp800_38aCtrKnownAnswer) {
  // NIST SP 800-38A F.5.1 CTR-AES128.Encrypt, first block.
  // Key 2b7e151628aed2a6abf7158809cf4f3c, counter block f0f1...feff.
  const Bytes key = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
  Bytes counter = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  Aes128 aes(key);
  aes.encrypt_block(counter.data());
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  Bytes ct(16);
  for (int i = 0; i < 16; ++i) ct[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(counter[static_cast<std::size_t>(i)] ^ pt[static_cast<std::size_t>(i)]);
  EXPECT_EQ(hex_encode(ByteView(ct)), "874d6191b620e3261bef6864990db6ce");
}

TEST(Aes128Ctr, RoundTrip) {
  Rng rng(3);
  const Bytes key = rng.bytes(16);
  const Bytes nonce = rng.bytes(12);
  const Bytes plain = rng.bytes(4097);
  Aes128Ctr enc(key, nonce);
  const Bytes ct = enc.transform(plain);
  EXPECT_NE(ct, plain);
  Aes128Ctr dec(key, nonce);
  EXPECT_EQ(dec.transform(ct), plain);
}

TEST(Aes128Ctr, CiphertextIsHighEntropy) {
  const Bytes plain(100000, 0x42);
  Aes128Ctr enc(to_bytes("key"), to_bytes("nonce"));
  EXPECT_GT(entropy::shannon(ByteView(enc.transform(plain))), 7.9);
}

TEST(Aes128Ctr, CounterAdvances) {
  // Two consecutive 16-byte transforms of zeros must differ (distinct
  // counter blocks).
  Aes128Ctr enc(to_bytes("key"), to_bytes("nonce"));
  const Bytes a = enc.transform(Bytes(16, 0));
  const Bytes b = enc.transform(Bytes(16, 0));
  EXPECT_NE(a, b);
}

// --- SHA-256 ----------------------------------------------------------------

TEST(Sha256, EmptyString) {
  EXPECT_EQ(sha256_hex(ByteView()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  const Bytes b = to_bytes("abc");
  EXPECT_EQ(sha256_hex(ByteView(b)),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  const Bytes b = to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  EXPECT_EQ(sha256_hex(ByteView(b)),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 hasher;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(ByteView(chunk));
  const auto digest = hasher.finish();
  EXPECT_EQ(hex_encode(ByteView(digest.data(), digest.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, StreamingMatchesOneShot) {
  Rng rng(4);
  const Bytes data = rng.bytes(10000);
  Sha256 hasher;
  for (std::size_t off = 0; off < data.size(); off += 77) {
    const std::size_t n = std::min<std::size_t>(77, data.size() - off);
    hasher.update(ByteView(data).subspan(off, n));
  }
  const auto streamed = hasher.finish();
  EXPECT_EQ(streamed, sha256(ByteView(data)));
}

TEST(Sha256, BoundaryLengths) {
  // Padding edge cases: 55, 56, 63, 64, 65 bytes.
  for (std::size_t n : {55u, 56u, 63u, 64u, 65u}) {
    const Bytes data(n, 'x');
    const auto d1 = sha256(ByteView(data));
    Sha256 hasher;
    hasher.update(ByteView(data).first(n / 2));
    hasher.update(ByteView(data).subspan(n / 2));
    EXPECT_EQ(hasher.finish(), d1) << "length " << n;
  }
}

TEST(Sha256, SensitiveToSingleBit) {
  Bytes a = to_bytes("The quick brown fox");
  Bytes b = a;
  b[0] ^= 1;
  EXPECT_NE(sha256(ByteView(a)), sha256(ByteView(b)));
}

// --- XOR cipher ------------------------------------------------------------

TEST(XorCipher, RoundTrip) {
  const Bytes key = to_bytes("0123456789abcdef");
  const Bytes plain = to_bytes("some moderately long plaintext for the xor test");
  const Bytes ct = xor_encrypt(key, plain);
  EXPECT_NE(ct, plain);
  EXPECT_EQ(xor_encrypt(key, ct), plain);
}

TEST(XorCipher, EmptyKeyIsIdentity) {
  const Bytes plain = to_bytes("data");
  EXPECT_EQ(xor_encrypt(ByteView(), plain), plain);
}

TEST(XorCipher, WeakerThanStrongCipher) {
  // The Xorist property: repeating-key XOR of structured text has lower
  // entropy than a real stream cipher's output.
  Rng rng(5);
  Bytes plain;
  for (int i = 0; i < 400; ++i) append(plain, std::string_view("the quick brown fox "));
  const Bytes key = rng.bytes(16);
  const double xor_entropy = entropy::shannon(ByteView(xor_encrypt(key, plain)));
  const double cc_entropy =
      entropy::shannon(ByteView(chacha20_encrypt(key, key, plain)));
  EXPECT_LT(xor_entropy, cc_entropy);
  EXPECT_GT(xor_entropy, entropy::shannon(ByteView(plain)));
}

TEST(XorCipher, ChangesEveryKeyPeriod) {
  const Bytes key = {0xff};
  const Bytes plain(64, 0x00);
  const Bytes ct = xor_encrypt(key, plain);
  for (std::uint8_t b : ct) EXPECT_EQ(b, 0xff);
}

}  // namespace
}  // namespace cryptodrop::crypto
