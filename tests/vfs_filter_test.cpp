// Tests for the minifilter-style filter stack: callback ordering, deny
// semantics, event payloads, and the recording filter.
#include <gtest/gtest.h>

#include "vfs/filesystem.hpp"
#include "vfs/filter.hpp"
#include "vfs/recording_filter.hpp"

namespace cryptodrop::vfs {
namespace {

/// Scripted filter: records callback order and can deny selected ops.
class ScriptedFilter : public Filter {
 public:
  explicit ScriptedFilter(std::string tag, std::vector<std::string>* log)
      : tag_(std::move(tag)), log_(log) {}

  Verdict pre_operation(const OperationEvent& event) override {
    log_->push_back(tag_ + ":pre:" + std::string(op_name(event.op)));
    last_event = event;
    last_event.data = {};  // spans die with the callback; don't retain
    if (deny_op.has_value() && event.op == *deny_op) return Verdict::deny;
    return Verdict::allow;
  }

  void post_operation(const OperationEvent& event, const Status& outcome) override {
    log_->push_back(tag_ + ":post:" + std::string(op_name(event.op)) +
                    (outcome.is_ok() ? ":ok" : ":err"));
  }

  void on_attach(FileSystem& fs) override { attached_to = &fs; }

  std::string tag_;
  std::vector<std::string>* log_;
  std::optional<OpType> deny_op;
  OperationEvent last_event;
  FileSystem* attached_to = nullptr;
};

class FilterTest : public ::testing::Test {
 protected:
  FileSystem fs;
  std::vector<std::string> log;
  ScriptedFilter top{"top", &log};
  ScriptedFilter bottom{"bottom", &log};
  ProcessId pid = 0;

  void SetUp() override {
    pid = fs.register_process("app");
    fs.attach_filter(&top);
    fs.attach_filter(&bottom);
  }
};

TEST_F(FilterTest, OnAttachReceivesFilesystem) {
  EXPECT_EQ(top.attached_to, &fs);
}

TEST_F(FilterTest, PreInOrderPostInReverse) {
  ASSERT_TRUE(fs.mkdir(pid, "d").is_ok());
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "top:pre:mkdir");
  EXPECT_EQ(log[1], "bottom:pre:mkdir");
  EXPECT_EQ(log[2], "bottom:post:mkdir:ok");
  EXPECT_EQ(log[3], "top:post:mkdir:ok");
}

TEST_F(FilterTest, DenyFailsOperationWithAccessDenied) {
  top.deny_op = OpType::mkdir;
  EXPECT_EQ(fs.mkdir(pid, "d").code(), Errc::access_denied);
  EXPECT_FALSE(fs.exists("d"));
}

TEST_F(FilterTest, DenyByFirstFilterSkipsSecondsPre) {
  top.deny_op = OpType::mkdir;
  (void)fs.mkdir(pid, "d");
  // bottom never saw a pre; top saw its own pre + the denial post.
  for (const std::string& entry : log) {
    EXPECT_NE(entry, "bottom:pre:mkdir");
  }
  EXPECT_EQ(log.back(), "top:post:mkdir:err");
}

TEST_F(FilterTest, DenyBySecondFilterNotifiesBoth) {
  bottom.deny_op = OpType::remove;
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("x")).is_ok());
  log.clear();
  EXPECT_EQ(fs.remove(pid, "f").code(), Errc::access_denied);
  EXPECT_TRUE(fs.exists("f"));
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "top:pre:remove");
  EXPECT_EQ(log[1], "bottom:pre:remove");
  EXPECT_EQ(log[2], "bottom:post:remove:err");
  EXPECT_EQ(log[3], "top:post:remove:err");
}

TEST_F(FilterTest, DeniedWriteLeavesContentIntact) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("original")).is_ok());
  top.deny_op = OpType::write;
  auto h = fs.open(pid, "f", kRead | kWrite);
  ASSERT_TRUE(h.is_ok());
  EXPECT_EQ(fs.write(pid, h.value(), to_bytes("mutated")).code(), Errc::access_denied);
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(to_string(ByteView(*fs.read_unfiltered("f"))), "original");
}

TEST_F(FilterTest, DeniedOpenCreatesNothing) {
  top.deny_op = OpType::open;
  EXPECT_EQ(fs.open(pid, "new.txt", kCreate).code(), Errc::access_denied);
  EXPECT_FALSE(fs.exists("new.txt"));
  EXPECT_EQ(fs.open_handle_count(), 0u);
}

TEST_F(FilterTest, DeniedRenameLeavesBothFiles) {
  ASSERT_TRUE(fs.write_file(pid, "src", to_bytes("s")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "dst", to_bytes("d")).is_ok());
  top.deny_op = OpType::rename;
  EXPECT_EQ(fs.rename(pid, "src", "dst").code(), Errc::access_denied);
  EXPECT_EQ(to_string(ByteView(*fs.read_unfiltered("src"))), "s");
  EXPECT_EQ(to_string(ByteView(*fs.read_unfiltered("dst"))), "d");
}

TEST_F(FilterTest, WriteEventCarriesDataAndOffset) {
  ASSERT_TRUE(fs.write_file(pid, "f", to_bytes("0123456789")).is_ok());
  auto h = fs.open(pid, "f", kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.seek(pid, h.value(), 4).is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), to_bytes("XY")).is_ok());
  EXPECT_EQ(top.last_event.op, OpType::write);
  EXPECT_EQ(top.last_event.offset, 4u);
  EXPECT_EQ(top.last_event.length, 2u);
  EXPECT_EQ(top.last_event.path, "f");
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
}

TEST_F(FilterTest, OpenEventDistinguishesCreateFromExisting) {
  (void)fs.open(pid, "fresh.txt", kCreate);
  EXPECT_EQ(top.last_event.file_id, kNoFile);  // creation: no id yet
  EXPECT_TRUE(top.last_event.open_mode & kCreate);
}

TEST_F(FilterTest, CloseEventReportsWroteFlag) {
  auto h = fs.open(pid, "f", kCreate);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), to_bytes("abc")).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(top.last_event.op, OpType::close);
  EXPECT_TRUE(top.last_event.wrote);
  EXPECT_EQ(top.last_event.wrote_bytes, 3u);

  ASSERT_TRUE(fs.read_file(pid, "f").is_ok());
  EXPECT_EQ(top.last_event.op, OpType::close);
  EXPECT_FALSE(top.last_event.wrote);
}

TEST_F(FilterTest, RenameEventCarriesBothPathsAndIds) {
  ASSERT_TRUE(fs.write_file(pid, "src", to_bytes("s")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "dst", to_bytes("d")).is_ok());
  const FileId src_id = fs.stat("src").value().id;
  const FileId dst_id = fs.stat("dst").value().id;
  ASSERT_TRUE(fs.rename(pid, "src", "dst").is_ok());
  EXPECT_EQ(top.last_event.op, OpType::rename);
  EXPECT_EQ(top.last_event.path, "src");
  EXPECT_EQ(top.last_event.dest_path, "dst");
  EXPECT_EQ(top.last_event.file_id, src_id);
  EXPECT_EQ(top.last_event.dest_file_id, dst_id);
}

TEST_F(FilterTest, EventsCarryProcessIdentity) {
  const ProcessId other = fs.register_process("second_app");
  ASSERT_TRUE(fs.write_file(other, "f", to_bytes("x")).is_ok());
  EXPECT_EQ(top.last_event.pid, other);
  EXPECT_EQ(top.last_event.process_name, "second_app");
}

TEST_F(FilterTest, DetachStopsCallbacks) {
  fs.detach_filter(&top);
  log.clear();
  ASSERT_TRUE(fs.mkdir(pid, "d").is_ok());
  for (const std::string& entry : log) {
    EXPECT_TRUE(entry.rfind("bottom:", 0) == 0) << entry;
  }
}

TEST_F(FilterTest, UnfilteredAccessorsGenerateNoEvents) {
  ASSERT_TRUE(fs.put_file_raw("raw.txt", to_bytes("data")).is_ok());
  log.clear();
  (void)fs.read_unfiltered("raw.txt");
  (void)fs.stat("raw.txt");
  (void)fs.list("");
  (void)fs.list_files_recursive("");
  EXPECT_TRUE(log.empty());
}

// --- RecordingFilter -------------------------------------------------------

TEST(RecordingFilter, RecordsSuccessAndFailure) {
  FileSystem fs;
  RecordingFilter recorder;
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.write_file(pid, "a/f.txt", to_bytes("x")).is_ok());
  (void)fs.remove(pid, "missing");  // fails inside apply? no: pre-checked
  const auto& ops = recorder.ops();
  ASSERT_GE(ops.size(), 3u);  // open, write, close
  EXPECT_TRUE(ops[0].succeeded);
}

TEST(RecordingFilter, PathQueriesFilterByProcess) {
  FileSystem fs;
  RecordingFilter recorder;
  fs.attach_filter(&recorder);
  const ProcessId a = fs.register_process("a");
  const ProcessId b = fs.register_process("b");
  ASSERT_TRUE(fs.write_file(a, "d1/x.txt", to_bytes("1")).is_ok());
  ASSERT_TRUE(fs.write_file(b, "d2/y.txt", to_bytes("2")).is_ok());
  ASSERT_TRUE(fs.read_file(a, "d2/y.txt").is_ok());

  const auto a_reads = recorder.paths_read_by(a);
  ASSERT_EQ(a_reads.size(), 1u);
  EXPECT_EQ(a_reads[0], "d2/y.txt");
  const auto b_mods = recorder.paths_modified_by(b);
  ASSERT_EQ(b_mods.size(), 1u);
  EXPECT_EQ(b_mods[0], "d2/y.txt");
  const auto a_dirs = recorder.directories_touched_by(a);
  EXPECT_TRUE(a_dirs.contains("d1"));
  EXPECT_TRUE(a_dirs.contains("d2"));
}

TEST(RecordingFilter, ClearResets) {
  FileSystem fs;
  RecordingFilter recorder;
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.mkdir(pid, "d").is_ok());
  EXPECT_FALSE(recorder.ops().empty());
  recorder.clear();
  EXPECT_TRUE(recorder.ops().empty());
}

}  // namespace
}  // namespace cryptodrop::vfs
