// Tests for the static-analysis rule engine (tools/lint) and the
// runtime lock-rank validator (common/ranked_mutex.hpp) — each lint
// rule must fire on a planted violation and stay quiet on the
// sanctioned spelling, and the allowlist must suppress (and track)
// exactly what it names. DESIGN.md §13.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/ranked_mutex.hpp"
#include "daemon/wire.hpp"
#include "lint/graph.hpp"
#include "lint/lint_rules.hpp"
#include "lint/scan.hpp"

namespace lint = cryptodrop::lint;
namespace common = cryptodrop::common;

namespace {

/// Small name schema the fixture snippets are checked against.
lint::NameTables fixture_tables() {
  lint::NameTables tables;
  tables.metric_families = {"ops_observed_total",
                            "indicator_events_total.<indicator>"};
  tables.placeholder_labels["<indicator>"] = {"entropy_delta", "deletion"};
  tables.span_names = {"engine.verdict", "engine.entropy"};
  tables.span_constants = {{"kVerdict", "engine.verdict"},
                           {"kEntropy", "engine.entropy"}};
  return tables;
}

/// Runs every rule over a snippet; returns the issues.
std::vector<lint::Issue> lint_snippet(const std::string& text) {
  return lint::lint_source("fixture.cpp", lint::split_lines(text),
                           fixture_tables());
}

/// The rule ids of each issue, in order.
std::vector<std::string> rules_of(const std::vector<lint::Issue>& issues) {
  std::vector<std::string> rules;
  for (const auto& issue : issues) rules.push_back(issue.rule);
  return rules;
}

TEST(LintRng, FlagsBannedRandomnessPrimitives) {
  EXPECT_EQ(rules_of(lint_snippet("int x = std::rand();")),
            std::vector<std::string>{"rng"});
  EXPECT_EQ(rules_of(lint_snippet("std::mt19937 gen(42);")),
            std::vector<std::string>{"rng"});
  EXPECT_EQ(rules_of(lint_snippet("std::random_device rd;")),
            std::vector<std::string>{"rng"});
}

TEST(LintRng, IgnoresCommentsStringsAndProjectRng) {
  EXPECT_TRUE(lint_snippet("// std::rand is banned; use common/rng").empty());
  EXPECT_TRUE(lint_snippet("log(\"std::rand would be bad\");").empty());
  EXPECT_TRUE(lint_snippet("auto v = rng.next_u64();").empty());
}

TEST(LintWallClock, FlagsClockReads) {
  const auto issues =
      lint_snippet("auto t = std::chrono::steady_clock::now();");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "wall-clock");
  EXPECT_EQ(issues[0].line, 1u);
  EXPECT_EQ(rules_of(lint_snippet("auto w = system_clock::now();")),
            std::vector<std::string>{"wall-clock"});
}

TEST(LintWallClock, IgnoresVirtualClockAndComments) {
  EXPECT_TRUE(lint_snippet("clock_.advance_ns(100);").empty());
  EXPECT_TRUE(lint_snippet("// steady_clock::now lives in obs only").empty());
}

TEST(LintNakedLock, FlagsHandLockCalls) {
  EXPECT_EQ(rules_of(lint_snippet("mu_.lock();")),
            std::vector<std::string>{"naked-lock"});
  EXPECT_EQ(rules_of(lint_snippet("shard.mu.unlock();")),
            std::vector<std::string>{"naked-lock"});
  EXPECT_EQ(rules_of(lint_snippet("if (mu_.try_lock()) { }")),
            std::vector<std::string>{"naked-lock"});
}

TEST(LintNakedLock, AcceptsGuardObjects) {
  // RAII construction has no .lock() call at all.
  EXPECT_TRUE(lint_snippet("std::lock_guard guard(mu_);").empty());
  // Methods on a guard object are the sanctioned early-release form.
  EXPECT_TRUE(lint_snippet("locked.lock.unlock();").empty());
  EXPECT_TRUE(lint_snippet("locks[i - 1].unlock();").empty());
  EXPECT_TRUE(lint_snippet("shard_guard.lock();").empty());
}

TEST(LintLockRank, FlagsUntaggedRawMutexDeclarations) {
  EXPECT_EQ(rules_of(lint_snippet("std::mutex mu_;")),
            std::vector<std::string>{"lock-rank"});
  EXPECT_EQ(rules_of(lint_snippet("std::shared_mutex table_mu_;")),
            std::vector<std::string>{"lock-rank"});
}

TEST(LintLockRank, AcceptsTagsRanksAndNonDeclarations) {
  EXPECT_TRUE(lint_snippet("std::mutex mu_;  // lock-rank: 40").empty());
  EXPECT_TRUE(
      lint_snippet("// lock-rank: 10 (scoreboard)\nstd::mutex mu_;").empty());
  // Template arguments, references and pointers are not lock objects.
  EXPECT_TRUE(lint_snippet("std::lock_guard<std::mutex> g(mu_);").empty());
  EXPECT_TRUE(lint_snippet("void f(std::mutex& mu);").empty());
  EXPECT_TRUE(lint_snippet("std::mutex* borrowed = nullptr;").empty());
}

TEST(LintMetricName, FlagsUnknownNames) {
  const auto issues =
      lint_snippet("auto* c = registry.counter(\"bogus_total\", \"help\");");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "metric-name");
  EXPECT_NE(issues[0].message.find("bogus_total"), std::string::npos);
}

TEST(LintMetricName, AcceptsSchemaNamesAndPlaceholderForms) {
  EXPECT_TRUE(
      lint_snippet("registry.counter(\"ops_observed_total\", \"help\");")
          .empty());
  // An expanded placeholder label is a legal concrete name.
  EXPECT_TRUE(lint_snippet("registry.counter("
                           "\"indicator_events_total.entropy_delta\", \"h\");")
                  .empty());
  // The `"family." + label` dynamic form resolves via the placeholder.
  EXPECT_TRUE(lint_snippet("registry.counter("
                           "\"indicator_events_total.\" + label, \"h\");")
                  .empty());
  // Non-literal first arguments are the runtime gate's job, not ours.
  EXPECT_TRUE(lint_snippet("registry.counter(name, \"help\");").empty());
}

TEST(LintMetricName, FlagsUnknownDynamicFamilyAndSpansLines) {
  EXPECT_EQ(rules_of(lint_snippet(
                "registry.counter(\"mystery.\" + label, \"help\");")),
            std::vector<std::string>{"metric-name"});
  // Registration split across lines is still one call.
  const auto issues = lint_snippet(
      "auto* g = registry.gauge(\n    \"bogus_gauge\",\n    \"help\");");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "metric-name");
  EXPECT_EQ(issues[0].line, 1u);
}

TEST(LintSpanName, FlagsUnknownSpanNamesAndConstants) {
  EXPECT_EQ(rules_of(lint_snippet("obs::ScopedSpan s(\"engine.mystery\");")),
            std::vector<std::string>{"span-name"});
  EXPECT_EQ(
      rules_of(lint_snippet("obs::ScopedSpan s(obs::span_name::kBogus);")),
      std::vector<std::string>{"span-name"});
}

TEST(LintSpanName, AcceptsSchemaSpans) {
  EXPECT_TRUE(lint_snippet("obs::ScopedSpan s(\"engine.verdict\");").empty());
  EXPECT_TRUE(
      lint_snippet("obs::ScopedSpan s(obs::span_name::kVerdict);").empty());
  // Root form: the tracer comes first, the name second.
  EXPECT_TRUE(lint_snippet("obs::ScopedSpan s(tracer_, "
                           "obs::span_name::kEntropy, pid, index);")
                  .empty());
  // Declarations without a name argument are not emission sites.
  EXPECT_TRUE(
      lint_snippet("ScopedSpan(SpanTracer* tracer, std::string_view name);")
          .empty());
}

TEST(LintAllowlist, SuppressesTracksAndRejects) {
  std::vector<std::string> errors;
  auto allow = lint::Allowlist::parse(
      {
          "# comment",
          "",
          "wall-clock src/obs/span.cpp tracer owns the clock reads",
          "rng bench/bench_perf.cpp never used",
          "malformed-no-reason src/x.cpp",
      },
      &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("malformed"), std::string::npos);

  EXPECT_TRUE(allow.allows("wall-clock", "src/obs/span.cpp"));
  EXPECT_FALSE(allow.allows("wall-clock", "src/obs/metrics.cpp"));
  EXPECT_FALSE(allow.allows("naked-lock", "src/obs/span.cpp"));

  // The rng entry was never consulted — it must surface as stale.
  const auto stale = allow.unused_entries();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "rng bench/bench_perf.cpp");
}

TEST(LintNameTables, ExpandsPlaceholderFamilies) {
  const auto expanded = fixture_tables().expanded_metric_names();
  EXPECT_TRUE(expanded.count("ops_observed_total"));
  EXPECT_TRUE(expanded.count("indicator_events_total.entropy_delta"));
  EXPECT_TRUE(expanded.count("indicator_events_total.deletion"));
  EXPECT_TRUE(expanded.count("indicator_events_total.<indicator>"));
  EXPECT_FALSE(expanded.count("indicator_events_total.bogus"));
}

TEST(LintScan, ExtractsStringConstants) {
  const auto constants = lint::extract_string_constants({
      "inline constexpr std::string_view kVerdict = \"engine.verdict\";",
      "inline constexpr int kNotAString = 3;",
  });
  ASSERT_EQ(constants.size(), 1u);
  EXPECT_EQ(constants.at("kVerdict"), "engine.verdict");
}

TEST(LintAllowlist, DirectoryEntriesAndStaleKeys) {
  std::vector<std::string> errors;
  auto allow = lint::Allowlist::parse(
      {
          "hot-alloc src/simhash/ pooled scratch buffers",
          "rng bench/bench_perf.cpp never used",
      },
      &errors);
  EXPECT_TRUE(errors.empty());

  // A trailing '/' covers the directory, not a same-prefix sibling.
  EXPECT_TRUE(allow.allows("hot-alloc", "src/simhash/similarity.cpp"));
  EXPECT_TRUE(allow.allows("hot-alloc", "src/simhash/digest_cache.cpp"));
  EXPECT_FALSE(allow.allows("hot-alloc", "src/simhash_extras/x.cpp"));
  EXPECT_FALSE(allow.allows("hot-throw", "src/simhash/similarity.cpp"));

  const auto stale = allow.unused_entry_keys();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].first, "rng");
  EXPECT_EQ(stale[0].second, "bench/bench_perf.cpp");
}

TEST(LintAllowlist, NearestPathRanksByEditDistance) {
  const std::vector<std::string> candidates = {"src/core/engine.cpp",
                                               "src/obs/span.cpp"};
  EXPECT_EQ(lint::nearest_path("src/core/engin.cpp", candidates),
            "src/core/engine.cpp");
  EXPECT_EQ(lint::nearest_path("src/obs/spans.cpp", candidates),
            "src/obs/span.cpp");
}

// --- include-graph layering (tools/lint/layers.txt, DESIGN.md §17) -----

/// A two-level fixture DAG: core (rank 1) may include common (rank 0).
lint::LayerSpec fixture_layers() {
  std::vector<std::string> errors;
  auto spec = lint::LayerSpec::parse(
      {"# fixture", "0 common src/common", "1 obs src/obs",
       "1 core src/core"},
      &errors);
  EXPECT_TRUE(errors.empty());
  return spec;
}

using FileMap = std::map<std::string, std::vector<std::string>>;

TEST(LintLayering, DownwardAndIntraLayerEdgesAreLegal) {
  const FileMap files = {
      {"src/core/engine.cpp",
       {"#include \"common/util.hpp\"", "#include \"core/engine.hpp\""}},
      {"src/core/engine.hpp", {}},
      {"src/common/util.hpp", {}},
  };
  const auto graph = lint::IncludeGraph::build(files);
  EXPECT_EQ(graph.edges.size(), 2u);
  EXPECT_TRUE(lint::check_layering(graph, fixture_layers()).empty());
}

TEST(LintLayering, UpwardEdgeFailsWithEdgePathPrinted) {
  // The deliberate upward include of the acceptance criteria: a rank-0
  // file reaching into rank 1.
  const FileMap files = {
      {"src/common/util.hpp", {"#include \"core/engine.hpp\""}},
      {"src/core/engine.hpp", {}},
  };
  const auto issues =
      lint::check_layering(lint::IncludeGraph::build(files), fixture_layers());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "layer-violation");
  EXPECT_EQ(issues[0].file, "src/common/util.hpp");
  EXPECT_EQ(issues[0].line, 1u);
  EXPECT_NE(issues[0].message.find(
                "edge src/common/util.hpp -> src/core/engine.hpp"),
            std::string::npos);
  EXPECT_NE(issues[0].message.find("goes up the layer DAG"),
            std::string::npos);
}

TEST(LintLayering, EqualRankCrossLayerEdgeIsFlagged) {
  const FileMap files = {
      {"src/core/engine.cpp", {"#include \"obs/span.hpp\""}},
      {"src/obs/span.hpp", {}},
  };
  const auto issues =
      lint::check_layering(lint::IncludeGraph::build(files), fixture_layers());
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_NE(issues[0].message.find("crosses between equal-rank layers"),
            std::string::npos);
}

TEST(LintLayering, UnlayeredFilesAreExempt) {
  const FileMap files = {
      {"scripts/gen.cpp", {"#include \"core/engine.hpp\""}},
      {"src/core/engine.hpp", {}},
  };
  EXPECT_TRUE(
      lint::check_layering(lint::IncludeGraph::build(files), fixture_layers())
          .empty());
}

TEST(LintCycles, ReportsTheFullCyclePathOnce) {
  const FileMap files = {
      {"src/common/a.hpp", {"#include \"common/b.hpp\""}},
      {"src/common/b.hpp", {"#include \"common/a.hpp\""}},
  };
  const auto issues = lint::check_cycles(lint::IncludeGraph::build(files));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "include-cycle");
  // Anchored at the smallest member, with every hop printed.
  EXPECT_EQ(issues[0].file, "src/common/a.hpp");
  EXPECT_NE(issues[0].message.find("src/common/a.hpp"), std::string::npos);
  EXPECT_NE(issues[0].message.find("src/common/b.hpp"), std::string::npos);
  EXPECT_NE(issues[0].message.find(" -> "), std::string::npos);
}

TEST(LintCycles, AcyclicChainsPass) {
  const FileMap files = {
      {"src/common/a.hpp", {"#include \"common/b.hpp\""}},
      {"src/common/b.hpp", {"#include \"common/c.hpp\""}},
      {"src/common/c.hpp", {}},
  };
  EXPECT_TRUE(lint::check_cycles(lint::IncludeGraph::build(files)).empty());
}

// --- hot-path purity (// cryptodrop:hot, DESIGN.md §17) -----------------

/// Runs the hot-path checker over an in-memory file set.
lint::HotPathReport hot_check(FileMap files) {
  return lint::check_hot_paths(files);
}

TEST(LintHotPath, CleanAnnotatedFunctionPasses) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "int tick(int x) {",
                                      "  return x + 1;",
                                      "}",
                                  }}});
  EXPECT_TRUE(report.issues.empty());
  EXPECT_EQ(report.annotated, 1u);
  EXPECT_EQ(report.reachable, 1u);
}

TEST(LintHotPath, FlagsAllocationInHotBody) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "void tick() {",
                                      "  scores.push_back(1);",
                                      "}",
                                  }}});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].rule, "hot-alloc");
  EXPECT_EQ(report.issues[0].line, 3u);
}

TEST(LintHotPath, PooledReceiversAreExemptFromAllocRule) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "void tick() {",
                                      "  scratch_pool.push_back(1);",
                                      "}",
                                  }}});
  EXPECT_TRUE(report.issues.empty());
}

TEST(LintHotPath, FlagsThrowInHotBody) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "void tick() {",
                                      "  throw std::runtime_error(\"x\");",
                                      "}",
                                  }}});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].rule, "hot-throw");
}

TEST(LintHotPath, FlagsFreeBlockingCallsButNotMethods) {
  const auto bad = hot_check({{"src/core/hot.cpp",
                               {
                                   "// cryptodrop:hot",
                                   "void tick(int fd, char* p) {",
                                   "  read(fd, p, 16);",
                                   "}",
                               }}});
  ASSERT_EQ(bad.issues.size(), 1u);
  EXPECT_EQ(bad.issues[0].rule, "hot-blocking");

  // A method named like a syscall is not blocking I/O.
  const auto good = hot_check({{"src/core/hot.cpp",
                                {
                                    "// cryptodrop:hot",
                                    "void tick(File& f, char* p) {",
                                    "  f.read(p, 16);",
                                    "}",
                                }}});
  EXPECT_TRUE(good.issues.empty());
}

TEST(LintHotPath, FlagsRawMutexInHotBody) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "void tick() {",
                                      "  std::mutex mu;",
                                      "}",
                                  }}});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].rule, "hot-unranked-lock");
}

TEST(LintHotPath, WalksIntoSameRepoCalleesAndPrintsChain) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "void tick() {",
                                      "  helper();",
                                      "}",
                                      "void helper() {",
                                      "  auto* p = new int(3);",
                                      "}",
                                  }}});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].rule, "hot-alloc");
  EXPECT_EQ(report.issues[0].line, 6u);
  EXPECT_NE(report.issues[0].message.find("via tick -> helper"),
            std::string::npos);
  EXPECT_EQ(report.annotated, 1u);
  EXPECT_EQ(report.reachable, 2u);
}

TEST(LintHotPath, MarkerWithoutAFunctionIsAnError) {
  const auto report = hot_check({{"src/core/hot.cpp",
                                  {
                                      "// cryptodrop:hot",
                                      "int x = 3;",
                                  }}});
  ASSERT_EQ(report.issues.size(), 1u);
  EXPECT_EQ(report.issues[0].rule, "hot-annotation");
  EXPECT_EQ(report.annotated, 0u);
}

// --- --report-json schema -----------------------------------------------

TEST(LintReport, RendersTheDocumentedSchema) {
  lint::ReportStats stats;
  stats.files_scanned = 7;
  stats.graph_nodes = 7;
  stats.graph_edges = 9;
  stats.layers = {lint::LayerStat{"common", 0, 3, 5, 0},
                  lint::LayerStat{"core", 1, 4, 0, 5}};
  stats.hot_annotated = 2;
  stats.hot_reachable = 6;
  stats.violations_by_rule = {{"hot-alloc", 1}, {"layer-violation", 2}};
  stats.suppressions_used = 4;

  const std::string text = lint::render_report_json(stats);
  const auto doc = cryptodrop::daemon::parse_json(text);
  ASSERT_TRUE(doc.has_value());

  EXPECT_EQ(doc->number_or("schema_version", 0), 1);
  EXPECT_EQ(doc->number_or("files_scanned", 0), 7);
  EXPECT_EQ(doc->number_or("suppressions_used", 0), 4);

  const auto* graph = doc->find("include_graph");
  ASSERT_NE(graph, nullptr);
  EXPECT_EQ(graph->number_or("nodes", 0), 7);
  EXPECT_EQ(graph->number_or("edges", 0), 9);
  const auto* layers = graph->find("layers");
  ASSERT_NE(layers, nullptr);
  ASSERT_EQ(layers->items.size(), 2u);
  EXPECT_EQ(layers->items[0].string_or("name", ""), "common");
  EXPECT_EQ(layers->items[0].number_or("rank", -1), 0);
  EXPECT_EQ(layers->items[0].number_or("files", 0), 3);
  EXPECT_EQ(layers->items[0].number_or("fan_in", 0), 5);
  EXPECT_EQ(layers->items[1].number_or("fan_out", 0), 5);

  const auto* hot = doc->find("hot_paths");
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->number_or("annotated", 0), 2);
  EXPECT_EQ(hot->number_or("reachable", 0), 6);

  const auto* violations = doc->find("violations");
  ASSERT_NE(violations, nullptr);
  EXPECT_EQ(violations->number_or("total", 0), 3);
  const auto* by_rule = violations->find("by_rule");
  ASSERT_NE(by_rule, nullptr);
  EXPECT_EQ(by_rule->number_or("hot-alloc", 0), 1);
  EXPECT_EQ(by_rule->number_or("layer-violation", 0), 2);
}

TEST(LintReport, EmptyStatsStillParse) {
  const auto doc =
      cryptodrop::daemon::parse_json(lint::render_report_json({}));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->number_or("schema_version", 0), 1);
  const auto* violations = doc->find("violations");
  ASSERT_NE(violations, nullptr);
  EXPECT_EQ(violations->number_or("total", -1), 0);
}

// --- runtime lock-rank validator ---------------------------------------

// Unchecked, the wrapper must be exactly a std::mutex — no per-object
// cost in release builds.
static_assert(sizeof(common::RankedMutex<1, false>) == sizeof(std::mutex));
static_assert(sizeof(common::RankedSharedMutex<1, false>) ==
              sizeof(std::shared_mutex));

// Checked instantiations under test-friendly names (EXPECT_DEATH is a
// macro — template-argument commas would split its argument list).
using CheckedRank10 = common::RankedMutex<10, true>;
using CheckedRank20 = common::RankedMutex<20, true>;
using CheckedRank30 = common::RankedMutex<30, true>;
using CheckedSharedRank10 = common::RankedSharedMutex<10, true>;

TEST(RankedMutex, AscendingRanksAreLegal) {
  CheckedRank10 scoreboard;
  CheckedRank20 file_table;
  std::lock_guard outer(scoreboard);
  std::lock_guard inner(file_table);
  SUCCEED();
}

TEST(RankedMutex, SameRankAscendingAddressIsLegal) {
  // The engine snapshot sweep: all shards of one rank, in index order.
  CheckedRank10 shards[4];
  for (auto& shard : shards) shard.lock();
  for (int i = 3; i >= 0; --i) shards[i].unlock();
  SUCCEED();
}

TEST(RankedMutexDeathTest, AbortsOnRankInversion) {
  EXPECT_DEATH(
      {
        CheckedRank10 scoreboard;
        CheckedRank20 file_table;
        std::lock_guard outer(file_table);
        std::lock_guard inner(scoreboard);
      },
      "lock-rank violation");
}

TEST(RankedMutexDeathTest, AbortsOnSameRankDescendingAddress) {
  EXPECT_DEATH(
      {
        CheckedRank10 shards[2];
        std::lock_guard outer(shards[1]);
        std::lock_guard inner(shards[0]);
      },
      "lock-rank violation");
}

TEST(RankedMutexDeathTest, TryLockRespectsRankOrder) {
  EXPECT_DEATH(
      {
        CheckedRank20 file_table;
        CheckedRank10 scoreboard;
        std::lock_guard outer(file_table);
        (void)scoreboard.try_lock();  // succeeds, and must still abort
      },
      "lock-rank violation");
}

TEST(RankedMutex, OutOfOrderReleaseUnwindsCorrectly) {
  CheckedRank10 a;
  CheckedRank20 b;
  a.lock();
  b.lock();
  a.unlock();  // release the lower rank first
  CheckedRank30 c;
  std::lock_guard g(c);  // stack top is rank 20 — still legal
  b.unlock();
}

TEST(RankedSharedMutex, SharedAcquisitionsAreRankChecked) {
  CheckedSharedRank10 table;
  CheckedRank20 leaf;
  table.lock_shared();
  {
    std::lock_guard g(leaf);
  }
  table.unlock_shared();
  EXPECT_DEATH(
      {
        CheckedRank20 outer_leaf;
        CheckedSharedRank10 inner_table;
        std::lock_guard g(outer_leaf);
        inner_table.lock_shared();
      },
      "lock-rank violation");
}

}  // namespace
