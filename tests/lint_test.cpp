// Tests for the static-analysis rule engine (tools/lint) and the
// runtime lock-rank validator (common/ranked_mutex.hpp) — each lint
// rule must fire on a planted violation and stay quiet on the
// sanctioned spelling, and the allowlist must suppress (and track)
// exactly what it names. DESIGN.md §13.
#include <gtest/gtest.h>

#include <mutex>
#include <string>
#include <vector>

#include "common/ranked_mutex.hpp"
#include "lint/lint_rules.hpp"
#include "lint/scan.hpp"

namespace lint = cryptodrop::lint;
namespace common = cryptodrop::common;

namespace {

/// Small name schema the fixture snippets are checked against.
lint::NameTables fixture_tables() {
  lint::NameTables tables;
  tables.metric_families = {"ops_observed_total",
                            "indicator_events_total.<indicator>"};
  tables.placeholder_labels["<indicator>"] = {"entropy_delta", "deletion"};
  tables.span_names = {"engine.verdict", "engine.entropy"};
  tables.span_constants = {{"kVerdict", "engine.verdict"},
                           {"kEntropy", "engine.entropy"}};
  return tables;
}

/// Runs every rule over a snippet; returns the issues.
std::vector<lint::Issue> lint_snippet(const std::string& text) {
  return lint::lint_source("fixture.cpp", lint::split_lines(text),
                           fixture_tables());
}

/// The rule ids of each issue, in order.
std::vector<std::string> rules_of(const std::vector<lint::Issue>& issues) {
  std::vector<std::string> rules;
  for (const auto& issue : issues) rules.push_back(issue.rule);
  return rules;
}

TEST(LintRng, FlagsBannedRandomnessPrimitives) {
  EXPECT_EQ(rules_of(lint_snippet("int x = std::rand();")),
            std::vector<std::string>{"rng"});
  EXPECT_EQ(rules_of(lint_snippet("std::mt19937 gen(42);")),
            std::vector<std::string>{"rng"});
  EXPECT_EQ(rules_of(lint_snippet("std::random_device rd;")),
            std::vector<std::string>{"rng"});
}

TEST(LintRng, IgnoresCommentsStringsAndProjectRng) {
  EXPECT_TRUE(lint_snippet("// std::rand is banned; use common/rng").empty());
  EXPECT_TRUE(lint_snippet("log(\"std::rand would be bad\");").empty());
  EXPECT_TRUE(lint_snippet("auto v = rng.next_u64();").empty());
}

TEST(LintWallClock, FlagsClockReads) {
  const auto issues =
      lint_snippet("auto t = std::chrono::steady_clock::now();");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "wall-clock");
  EXPECT_EQ(issues[0].line, 1u);
  EXPECT_EQ(rules_of(lint_snippet("auto w = system_clock::now();")),
            std::vector<std::string>{"wall-clock"});
}

TEST(LintWallClock, IgnoresVirtualClockAndComments) {
  EXPECT_TRUE(lint_snippet("clock_.advance_ns(100);").empty());
  EXPECT_TRUE(lint_snippet("// steady_clock::now lives in obs only").empty());
}

TEST(LintNakedLock, FlagsHandLockCalls) {
  EXPECT_EQ(rules_of(lint_snippet("mu_.lock();")),
            std::vector<std::string>{"naked-lock"});
  EXPECT_EQ(rules_of(lint_snippet("shard.mu.unlock();")),
            std::vector<std::string>{"naked-lock"});
  EXPECT_EQ(rules_of(lint_snippet("if (mu_.try_lock()) { }")),
            std::vector<std::string>{"naked-lock"});
}

TEST(LintNakedLock, AcceptsGuardObjects) {
  // RAII construction has no .lock() call at all.
  EXPECT_TRUE(lint_snippet("std::lock_guard guard(mu_);").empty());
  // Methods on a guard object are the sanctioned early-release form.
  EXPECT_TRUE(lint_snippet("locked.lock.unlock();").empty());
  EXPECT_TRUE(lint_snippet("locks[i - 1].unlock();").empty());
  EXPECT_TRUE(lint_snippet("shard_guard.lock();").empty());
}

TEST(LintLockRank, FlagsUntaggedRawMutexDeclarations) {
  EXPECT_EQ(rules_of(lint_snippet("std::mutex mu_;")),
            std::vector<std::string>{"lock-rank"});
  EXPECT_EQ(rules_of(lint_snippet("std::shared_mutex table_mu_;")),
            std::vector<std::string>{"lock-rank"});
}

TEST(LintLockRank, AcceptsTagsRanksAndNonDeclarations) {
  EXPECT_TRUE(lint_snippet("std::mutex mu_;  // lock-rank: 40").empty());
  EXPECT_TRUE(
      lint_snippet("// lock-rank: 10 (scoreboard)\nstd::mutex mu_;").empty());
  // Template arguments, references and pointers are not lock objects.
  EXPECT_TRUE(lint_snippet("std::lock_guard<std::mutex> g(mu_);").empty());
  EXPECT_TRUE(lint_snippet("void f(std::mutex& mu);").empty());
  EXPECT_TRUE(lint_snippet("std::mutex* borrowed = nullptr;").empty());
}

TEST(LintMetricName, FlagsUnknownNames) {
  const auto issues =
      lint_snippet("auto* c = registry.counter(\"bogus_total\", \"help\");");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "metric-name");
  EXPECT_NE(issues[0].message.find("bogus_total"), std::string::npos);
}

TEST(LintMetricName, AcceptsSchemaNamesAndPlaceholderForms) {
  EXPECT_TRUE(
      lint_snippet("registry.counter(\"ops_observed_total\", \"help\");")
          .empty());
  // An expanded placeholder label is a legal concrete name.
  EXPECT_TRUE(lint_snippet("registry.counter("
                           "\"indicator_events_total.entropy_delta\", \"h\");")
                  .empty());
  // The `"family." + label` dynamic form resolves via the placeholder.
  EXPECT_TRUE(lint_snippet("registry.counter("
                           "\"indicator_events_total.\" + label, \"h\");")
                  .empty());
  // Non-literal first arguments are the runtime gate's job, not ours.
  EXPECT_TRUE(lint_snippet("registry.counter(name, \"help\");").empty());
}

TEST(LintMetricName, FlagsUnknownDynamicFamilyAndSpansLines) {
  EXPECT_EQ(rules_of(lint_snippet(
                "registry.counter(\"mystery.\" + label, \"help\");")),
            std::vector<std::string>{"metric-name"});
  // Registration split across lines is still one call.
  const auto issues = lint_snippet(
      "auto* g = registry.gauge(\n    \"bogus_gauge\",\n    \"help\");");
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].rule, "metric-name");
  EXPECT_EQ(issues[0].line, 1u);
}

TEST(LintSpanName, FlagsUnknownSpanNamesAndConstants) {
  EXPECT_EQ(rules_of(lint_snippet("obs::ScopedSpan s(\"engine.mystery\");")),
            std::vector<std::string>{"span-name"});
  EXPECT_EQ(
      rules_of(lint_snippet("obs::ScopedSpan s(obs::span_name::kBogus);")),
      std::vector<std::string>{"span-name"});
}

TEST(LintSpanName, AcceptsSchemaSpans) {
  EXPECT_TRUE(lint_snippet("obs::ScopedSpan s(\"engine.verdict\");").empty());
  EXPECT_TRUE(
      lint_snippet("obs::ScopedSpan s(obs::span_name::kVerdict);").empty());
  // Root form: the tracer comes first, the name second.
  EXPECT_TRUE(lint_snippet("obs::ScopedSpan s(tracer_, "
                           "obs::span_name::kEntropy, pid, index);")
                  .empty());
  // Declarations without a name argument are not emission sites.
  EXPECT_TRUE(
      lint_snippet("ScopedSpan(SpanTracer* tracer, std::string_view name);")
          .empty());
}

TEST(LintAllowlist, SuppressesTracksAndRejects) {
  std::vector<std::string> errors;
  auto allow = lint::Allowlist::parse(
      {
          "# comment",
          "",
          "wall-clock src/obs/span.cpp tracer owns the clock reads",
          "rng bench/bench_perf.cpp never used",
          "malformed-no-reason src/x.cpp",
      },
      &errors);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("malformed"), std::string::npos);

  EXPECT_TRUE(allow.allows("wall-clock", "src/obs/span.cpp"));
  EXPECT_FALSE(allow.allows("wall-clock", "src/obs/metrics.cpp"));
  EXPECT_FALSE(allow.allows("naked-lock", "src/obs/span.cpp"));

  // The rng entry was never consulted — it must surface as stale.
  const auto stale = allow.unused_entries();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0], "rng bench/bench_perf.cpp");
}

TEST(LintNameTables, ExpandsPlaceholderFamilies) {
  const auto expanded = fixture_tables().expanded_metric_names();
  EXPECT_TRUE(expanded.count("ops_observed_total"));
  EXPECT_TRUE(expanded.count("indicator_events_total.entropy_delta"));
  EXPECT_TRUE(expanded.count("indicator_events_total.deletion"));
  EXPECT_TRUE(expanded.count("indicator_events_total.<indicator>"));
  EXPECT_FALSE(expanded.count("indicator_events_total.bogus"));
}

TEST(LintScan, ExtractsStringConstants) {
  const auto constants = lint::extract_string_constants({
      "inline constexpr std::string_view kVerdict = \"engine.verdict\";",
      "inline constexpr int kNotAString = 3;",
  });
  ASSERT_EQ(constants.size(), 1u);
  EXPECT_EQ(constants.at("kVerdict"), "engine.verdict");
}

// --- runtime lock-rank validator ---------------------------------------

// Unchecked, the wrapper must be exactly a std::mutex — no per-object
// cost in release builds.
static_assert(sizeof(common::RankedMutex<1, false>) == sizeof(std::mutex));
static_assert(sizeof(common::RankedSharedMutex<1, false>) ==
              sizeof(std::shared_mutex));

// Checked instantiations under test-friendly names (EXPECT_DEATH is a
// macro — template-argument commas would split its argument list).
using CheckedRank10 = common::RankedMutex<10, true>;
using CheckedRank20 = common::RankedMutex<20, true>;
using CheckedRank30 = common::RankedMutex<30, true>;
using CheckedSharedRank10 = common::RankedSharedMutex<10, true>;

TEST(RankedMutex, AscendingRanksAreLegal) {
  CheckedRank10 scoreboard;
  CheckedRank20 file_table;
  std::lock_guard outer(scoreboard);
  std::lock_guard inner(file_table);
  SUCCEED();
}

TEST(RankedMutex, SameRankAscendingAddressIsLegal) {
  // The engine snapshot sweep: all shards of one rank, in index order.
  CheckedRank10 shards[4];
  for (auto& shard : shards) shard.lock();
  for (int i = 3; i >= 0; --i) shards[i].unlock();
  SUCCEED();
}

TEST(RankedMutexDeathTest, AbortsOnRankInversion) {
  EXPECT_DEATH(
      {
        CheckedRank10 scoreboard;
        CheckedRank20 file_table;
        std::lock_guard outer(file_table);
        std::lock_guard inner(scoreboard);
      },
      "lock-rank violation");
}

TEST(RankedMutexDeathTest, AbortsOnSameRankDescendingAddress) {
  EXPECT_DEATH(
      {
        CheckedRank10 shards[2];
        std::lock_guard outer(shards[1]);
        std::lock_guard inner(shards[0]);
      },
      "lock-rank violation");
}

TEST(RankedMutexDeathTest, TryLockRespectsRankOrder) {
  EXPECT_DEATH(
      {
        CheckedRank20 file_table;
        CheckedRank10 scoreboard;
        std::lock_guard outer(file_table);
        (void)scoreboard.try_lock();  // succeeds, and must still abort
      },
      "lock-rank violation");
}

TEST(RankedMutex, OutOfOrderReleaseUnwindsCorrectly) {
  CheckedRank10 a;
  CheckedRank20 b;
  a.lock();
  b.lock();
  a.unlock();  // release the lower rank first
  CheckedRank30 c;
  std::lock_guard g(c);  // stack top is rank 20 — still legal
  b.unlock();
}

TEST(RankedSharedMutex, SharedAcquisitionsAreRankChecked) {
  CheckedSharedRank10 table;
  CheckedRank20 leaf;
  table.lock_shared();
  {
    std::lock_guard g(leaf);
  }
  table.unlock_shared();
  EXPECT_DEATH(
      {
        CheckedRank20 outer_leaf;
        CheckedSharedRank10 inner_table;
        std::lock_guard g(outer_leaf);
        inner_table.lock_shared();
      },
      "lock-rank violation");
}

}  // namespace
