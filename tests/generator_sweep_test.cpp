// Parameterized property sweep across (file kind x size): every corpus
// generator must produce content that (a) keeps its magic identity at
// any size, (b) stays in its entropy band, (c) is digestible by the
// similarity hash when large enough, and (d) scores ~0 against its own
// ciphertext — the full contract the indicators rely on, checked at the
// sizes the corpus actually draws.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "corpus/generators.hpp"
#include "crypto/chacha20.hpp"
#include "entropy/entropy.hpp"
#include "magic/magic.hpp"
#include "simhash/similarity.hpp"

namespace cryptodrop::corpus {
namespace {

using SweepParam = std::tuple<FileKind, std::size_t>;

class GeneratorSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  static Bytes content() {
    auto [kind, size] = GetParam();
    Rng rng(seed_from_string(std::string(kind_extension(kind))) ^ size);
    return generate_content(kind, size, rng);
  }
};

TEST_P(GeneratorSweepTest, TypeIdentityIsSizeIndependent) {
  auto [kind, size] = GetParam();
  const Bytes data = content();
  const magic::TypeId id = magic::identify(ByteView(data));
  EXPECT_NE(id, magic::TypeId::empty);
  EXPECT_NE(id, magic::TypeId::high_entropy_data)
      << kind_extension(kind) << " at " << size
      << " must identify as a concrete type, not raw ciphertext-alike";
}

TEST_P(GeneratorSweepTest, EntropyStaysInItsKindBand) {
  auto [kind, size] = GetParam();
  const Bytes data = content();
  const double e = entropy::shannon(ByteView(data));
  switch (kind) {
    // Prose/markup: well under the compressed zone at any size.
    case FileKind::txt:
    case FileKind::md:
    case FileKind::csv:
    case FileKind::log:
    case FileKind::html:
    case FileKind::xml:
    case FileKind::rtf:
    case FileKind::ps:
      EXPECT_LT(e, 6.0) << kind_extension(kind) << " at " << size;
      break;
    // Legacy binary/uncompressed formats: structured, mid-band.
    case FileKind::doc:
    case FileKind::xls:
    case FileKind::ppt:
      EXPECT_LT(e, 7.5) << kind_extension(kind) << " at " << size;
      break;
    case FileKind::bmp:
      EXPECT_LT(e, 4.5) << "at " << size;
      break;
    case FileKind::wav:
      EXPECT_LT(e, 7.2) << "at " << size;
      break;
    // Compressed containers genuinely approach 8 bits/byte — that is the
    // very property §V-D calls out ("far less entropy increase when
    // encrypted").
    default:
      EXPECT_GT(e, 6.5) << kind_extension(kind) << " at " << size;
      break;
  }
}

TEST_P(GeneratorSweepTest, EncryptionNeverLowersEntropyMeaningfully) {
  auto [kind, size] = GetParam();
  if (size < 4096) {
    // A few hundred bytes can't fill the byte histogram: both sides sit
    // around 7.3 with noise either way.
    GTEST_SKIP() << "histogram too sparse below 4 KiB";
  }
  const Bytes data = content();
  const Bytes ct =
      crypto::chacha20_encrypt(to_bytes("k"), to_bytes("n"), ByteView(data));
  const double before = entropy::shannon(ByteView(data));
  const double after = entropy::shannon(ByteView(ct));
  // Already-compressed sources sit at ~8.0; ciphertext may land a hair
  // lower by sampling noise, never meaningfully (the paper's "delay" for
  // samples attacking high-entropy files first is exactly this).
  EXPECT_GT(after, before - 0.02) << kind_extension(kind) << " at " << size;
  EXPECT_GT(after, 7.0) << kind_extension(kind) << " at " << size;
}

TEST_P(GeneratorSweepTest, LargeContentIsDigestibleAndSelfSimilar) {
  auto [kind, size] = GetParam();
  if (size < 4096) GTEST_SKIP() << "digestibility only promised >= 4 KiB";
  const Bytes data = content();
  const auto digest = simhash::SimilarityDigest::compute(ByteView(data));
  if (kind == FileKind::bmp) {
    // BMP scanlines have a tiny byte alphabet; like sdhash on degenerate
    // input, a digest may legitimately be unavailable.
    if (!digest.has_value()) GTEST_SKIP();
  }
  ASSERT_TRUE(digest.has_value()) << kind_extension(kind) << " at " << size;
  EXPECT_EQ(digest->compare(*digest), 100);
}

TEST_P(GeneratorSweepTest, CiphertextScoresNoMatch) {
  auto [kind, size] = GetParam();
  if (size < 16384) GTEST_SKIP() << "stable digests need some length";
  const Bytes data = content();
  const auto original = simhash::SimilarityDigest::compute(ByteView(data));
  if (!original.has_value()) GTEST_SKIP();
  const Bytes ct =
      crypto::chacha20_encrypt(to_bytes("k"), to_bytes("n"), ByteView(data));
  const auto encrypted = simhash::SimilarityDigest::compute(ByteView(ct));
  ASSERT_TRUE(encrypted.has_value());
  EXPECT_LE(original->compare(*encrypted), 2)
      << kind_extension(kind) << " at " << size;
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> params;
  for (FileKind kind : all_kinds()) {
    for (std::size_t size : {700u, 4096u, 65536u, 524288u}) {
      params.emplace_back(kind, size);
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    KindsBySizes, GeneratorSweepTest, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(kind_extension(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace cryptodrop::corpus
