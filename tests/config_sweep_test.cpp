// Property sweep over scoring-configuration subsets: with any two of
// the three primary indicators active, a stock Class A encryptor must
// still be detected with bounded loss; and no indicator subset may turn
// the well-behaved benign editor into a false positive. This pins down
// the redundancy claim behind §III ("each indicator provides value in
// isolation, [but] we use union indication to take action faster").
#include <gtest/gtest.h>

#include "harness/experiment.hpp"

namespace cryptodrop {
namespace {

struct ConfigCase {
  bool entropy;
  bool type_change;
  bool similarity;
  bool deletion;
  bool funneling;
  bool family;

  [[nodiscard]] int primaries() const {
    return (entropy ? 1 : 0) + (type_change ? 1 : 0) + (similarity ? 1 : 0);
  }
  [[nodiscard]] core::ScoringConfig to_config() const {
    core::ScoringConfig config;
    config.enable_entropy = entropy;
    config.enable_type_change = type_change;
    config.enable_similarity = similarity;
    config.enable_deletion = deletion;
    config.enable_funneling = funneling;
    config.enable_family_scoring = family;
    return config;
  }
  [[nodiscard]] std::string label() const {
    std::string out;
    out += entropy ? 'E' : 'e';
    out += type_change ? 'T' : 't';
    out += similarity ? 'S' : 's';
    out += deletion ? 'D' : 'd';
    out += funneling ? 'F' : 'f';
    out += family ? 'G' : 'g';
    return out;
  }
};

std::vector<ConfigCase> all_cases() {
  std::vector<ConfigCase> cases;
  for (int mask = 0; mask < 32; ++mask) {
    cases.push_back(ConfigCase{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0,
                               (mask & 8) != 0, (mask & 16) != 0,
                               /*family=*/(mask % 2) == 0});
  }
  return cases;
}

class ConfigSweepTest : public ::testing::TestWithParam<ConfigCase> {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 400;
    spec.total_dirs = 40;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 777));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }
};

harness::Environment* ConfigSweepTest::env = nullptr;

TEST_P(ConfigSweepTest, TwoPrimariesSufficeAgainstClassA) {
  const ConfigCase& param = GetParam();
  if (param.primaries() < 2) {
    GTEST_SKIP() << "single/zero-indicator configs are covered by bench_ablation";
  }
  sim::SampleSpec spec;
  spec.family = "Filecoder";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("Filecoder", sim::BehaviorClass::A);
  spec.profile.traversal = sim::Traversal::alphabetical;
  spec.profile.target_extensions.clear();
  spec.seed = 12345;
  const auto r = harness::run_ransomware_sample(*env, spec, param.to_config());
  EXPECT_TRUE(r.detected) << param.label();
  EXPECT_LT(r.files_lost, env->corpus.file_count() / 4) << param.label();
}

TEST_P(ConfigSweepTest, BenignEditorNeverFlaggedUnderAnySubset) {
  const ConfigCase& param = GetParam();
  const auto r = harness::run_benign_workload(
      *env, sim::benign_workload("Microsoft Word"), param.to_config(), 5);
  EXPECT_FALSE(r.detected) << param.label();
  EXPECT_EQ(r.final_score, 0) << param.label();
}

TEST_P(ConfigSweepTest, ScoreIsMonotoneInEnabledIndicators) {
  // Enabling an extra indicator can only raise (or keep) the final score
  // of a fixed malicious run — configs never interfere destructively.
  const ConfigCase& param = GetParam();
  sim::SampleSpec spec;
  spec.family = "CryptoDefense";
  spec.behavior = sim::BehaviorClass::C;
  spec.profile = sim::family_profile("CryptoDefense", sim::BehaviorClass::C);
  spec.profile.max_files = 4;  // short fixed prefix, no suspension
  spec.seed = 999;

  core::ScoringConfig base = param.to_config();
  base.score_threshold = 1 << 30;
  base.union_threshold = 1 << 30;
  const auto with = harness::run_ransomware_sample(*env, spec, base);

  core::ScoringConfig stripped = base;
  stripped.enable_deletion = false;
  const auto without = harness::run_ransomware_sample(*env, spec, stripped);
  EXPECT_GE(with.final_score, without.final_score) << param.label();
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, ConfigSweepTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<ConfigCase>& info) {
                           return info.param.label();
                         });

}  // namespace
}  // namespace cryptodrop
