// Property sweep over scoring-configuration subsets: with any two of
// the three primary indicators active, a stock Class A encryptor must
// still be detected with bounded loss; and no indicator subset may turn
// the well-behaved benign editor into a false positive. This pins down
// the redundancy claim behind §III ("each indicator provides value in
// isolation, [but] we use union indication to take action faster").
//
// All trials for the whole sweep are precomputed once on the parallel
// runner's pool (every trial owns its session, so results are identical
// to running them one by one inside each TEST_P); the parameterized
// tests then just assert on the stored outcomes.
#include <gtest/gtest.h>

#include <map>

#include "harness/runner.hpp"

namespace cryptodrop {
namespace {

struct ConfigCase {
  bool entropy;
  bool type_change;
  bool similarity;
  bool deletion;
  bool funneling;
  bool family;

  [[nodiscard]] int primaries() const {
    return (entropy ? 1 : 0) + (type_change ? 1 : 0) + (similarity ? 1 : 0);
  }
  [[nodiscard]] core::ScoringConfig to_config() const {
    core::ScoringConfig config;
    config.entropy.enabled = entropy;
    config.enable_type_change = type_change;
    config.enable_similarity = similarity;
    config.enable_deletion = deletion;
    config.enable_funneling = funneling;
    config.enable_family_scoring = family;
    return config;
  }
  [[nodiscard]] std::string label() const {
    std::string out;
    out += entropy ? 'E' : 'e';
    out += type_change ? 'T' : 't';
    out += similarity ? 'S' : 's';
    out += deletion ? 'D' : 'd';
    out += funneling ? 'F' : 'f';
    out += family ? 'G' : 'g';
    return out;
  }
};

std::vector<ConfigCase> all_cases() {
  std::vector<ConfigCase> cases;
  for (int mask = 0; mask < 32; ++mask) {
    cases.push_back(ConfigCase{(mask & 1) != 0, (mask & 2) != 0, (mask & 4) != 0,
                               (mask & 8) != 0, (mask & 16) != 0,
                               /*family=*/(mask % 2) == 0});
  }
  return cases;
}

sim::SampleSpec class_a_spec() {
  sim::SampleSpec spec;
  spec.family = "Filecoder";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("Filecoder", sim::BehaviorClass::A);
  spec.profile.traversal = sim::Traversal::alphabetical;
  spec.profile.target_extensions.clear();
  spec.seed = 12345;
  return spec;
}

sim::SampleSpec class_c_prefix_spec() {
  sim::SampleSpec spec;
  spec.family = "CryptoDefense";
  spec.behavior = sim::BehaviorClass::C;
  spec.profile = sim::family_profile("CryptoDefense", sim::BehaviorClass::C);
  spec.profile.max_files = 4;  // short fixed prefix, no suspension
  spec.seed = 999;
  return spec;
}

struct MonotonePair {
  harness::RansomwareRunResult with;
  harness::RansomwareRunResult without;
};

class ConfigSweepTest : public ::testing::TestWithParam<ConfigCase> {
 protected:
  static harness::Environment* env;
  // Trial outcomes keyed by ConfigCase::label(), filled by the pool.
  static std::map<std::string, harness::RansomwareRunResult>* class_a;
  static std::map<std::string, harness::BenignRunResult>* benign;
  static std::map<std::string, MonotonePair>* monotone;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 400;
    spec.total_dirs = 40;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 777));

    class_a = new std::map<std::string, harness::RansomwareRunResult>();
    benign = new std::map<std::string, harness::BenignRunResult>();
    monotone = new std::map<std::string, MonotonePair>();

    // One closure per trial. Keys are inserted up front so the workers
    // only ever write through stable, distinct mapped values.
    std::vector<std::function<void()>> trials;
    for (const ConfigCase& param : all_cases()) {
      const std::string key = param.label();
      if (param.primaries() >= 2) {
        auto* slot = &(*class_a)[key];
        trials.push_back([slot, param] {
          *slot = harness::run_ransomware_sample(*env, class_a_spec(),
                                                 param.to_config());
        });
      }
      auto* benign_slot = &(*benign)[key];
      trials.push_back([benign_slot, param] {
        *benign_slot = harness::run_benign_workload(
            *env, sim::benign_workload("Microsoft Word"), param.to_config(), 5);
      });
      auto* pair = &(*monotone)[key];
      trials.push_back([pair, param] {
        core::ScoringConfig base = param.to_config();
        base.score_threshold = 1 << 30;
        base.union_threshold = 1 << 30;
        pair->with = harness::run_ransomware_sample(*env, class_c_prefix_spec(), base);
        core::ScoringConfig stripped = base;
        stripped.enable_deletion = false;
        pair->without =
            harness::run_ransomware_sample(*env, class_c_prefix_spec(), stripped);
      });
    }

    harness::RunnerOptions options;  // jobs = 0: one worker per core
    harness::parallel_for(trials.size(), options,
                          [&](std::size_t i) { trials[i](); });
  }

  static void TearDownTestSuite() {
    delete monotone;
    monotone = nullptr;
    delete benign;
    benign = nullptr;
    delete class_a;
    class_a = nullptr;
    delete env;
    env = nullptr;
  }
};

harness::Environment* ConfigSweepTest::env = nullptr;
std::map<std::string, harness::RansomwareRunResult>* ConfigSweepTest::class_a = nullptr;
std::map<std::string, harness::BenignRunResult>* ConfigSweepTest::benign = nullptr;
std::map<std::string, MonotonePair>* ConfigSweepTest::monotone = nullptr;

TEST_P(ConfigSweepTest, TwoPrimariesSufficeAgainstClassA) {
  const ConfigCase& param = GetParam();
  if (param.primaries() < 2) {
    GTEST_SKIP() << "single/zero-indicator configs are covered by bench_ablation";
  }
  const harness::RansomwareRunResult& r = class_a->at(param.label());
  EXPECT_TRUE(r.detected) << param.label();
  EXPECT_LT(r.files_lost, env->corpus.file_count() / 4) << param.label();
}

TEST_P(ConfigSweepTest, BenignEditorNeverFlaggedUnderAnySubset) {
  const ConfigCase& param = GetParam();
  const harness::BenignRunResult& r = benign->at(param.label());
  EXPECT_FALSE(r.detected) << param.label();
  EXPECT_EQ(r.final_score, 0) << param.label();
}

TEST_P(ConfigSweepTest, ScoreIsMonotoneInEnabledIndicators) {
  // Enabling an extra indicator can only raise (or keep) the final score
  // of a fixed malicious run — configs never interfere destructively.
  const ConfigCase& param = GetParam();
  const MonotonePair& pair = monotone->at(param.label());
  EXPECT_GE(pair.with.final_score, pair.without.final_score) << param.label();
}

INSTANTIATE_TEST_SUITE_P(AllSubsets, ConfigSweepTest,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<ConfigCase>& info) {
                           return info.param.label();
                         });

}  // namespace
}  // namespace cryptodrop
