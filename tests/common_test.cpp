// Unit tests for the common substrate: rng, hex, stats, text, result.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/bytes.hpp"
#include "common/hex.hpp"
#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/text.hpp"

namespace cryptodrop {
namespace {

// --- bytes --------------------------------------------------------------

TEST(Bytes, RoundTripString) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(ByteView(b)), "hello");
}

TEST(Bytes, AppendConcatenates) {
  Bytes b = to_bytes("ab");
  append(b, std::string_view("cd"));
  append(b, ByteView(to_bytes("ef")));
  EXPECT_EQ(to_string(ByteView(b)), "abcdef");
}

TEST(Bytes, StartsWithMatchesPrefix) {
  const Bytes b = to_bytes("PK\x03\x04rest");
  EXPECT_TRUE(starts_with(ByteView(b), std::string_view("PK\x03\x04", 4)));
  EXPECT_FALSE(starts_with(ByteView(b), std::string_view("PK\x05", 3)));
}

TEST(Bytes, StartsWithLongerPrefixFails) {
  const Bytes b = to_bytes("ab");
  EXPECT_FALSE(starts_with(ByteView(b), std::string_view("abc")));
}

// --- hex ------------------------------------------------------------------

TEST(Hex, EncodeKnownBytes) {
  const Bytes b = {0x00, 0x0f, 0xff, 0xa5};
  EXPECT_EQ(hex_encode(ByteView(b)), "000fffa5");
}

TEST(Hex, DecodeRoundTrip) {
  const Bytes b = {1, 2, 3, 250, 251, 252};
  const auto decoded = hex_decode(hex_encode(ByteView(b)));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, b);
}

TEST(Hex, DecodeAcceptsUpperCase) {
  const auto decoded = hex_decode("DEADBEEF");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(hex_encode(ByteView(*decoded)), "deadbeef");
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(hex_decode("abc").has_value());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(hex_decode("zz").has_value());
}

TEST(Hex, EmptyIsEmpty) {
  EXPECT_EQ(hex_encode(ByteView()), "");
  const auto decoded = hex_decode("");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(5, 5), 5u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.uniform(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceApproximatesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, GaussianMeanAndSpread) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.1);
}

TEST(Rng, BytesLengthAndDeterminism) {
  Rng a(21), b(21);
  const Bytes x = a.bytes(1000);
  const Bytes y = b.bytes(1000);
  EXPECT_EQ(x.size(), 1000u);
  EXPECT_EQ(x, y);
}

TEST(Rng, BytesNonAligned) {
  Rng rng(22);
  EXPECT_EQ(rng.bytes(0).size(), 0u);
  EXPECT_EQ(rng.bytes(1).size(), 1u);
  EXPECT_EQ(rng.bytes(7).size(), 7u);
  EXPECT_EQ(rng.bytes(9).size(), 9u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {0.0, 9.0, 1.0};
  int counts[3] = {};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIsIndependentOfParentContinuation) {
  Rng parent(55);
  Rng child = parent.fork(1);
  const std::uint64_t c1 = child.next();
  // Re-derive: same parent seed, same fork id -> same child stream.
  Rng parent2(55);
  Rng child2 = parent2.fork(1);
  EXPECT_EQ(child2.next(), c1);
  // Different stream ids diverge.
  Rng parent3(55);
  Rng child3 = parent3.fork(2);
  EXPECT_NE(child3.next(), c1);
}

TEST(Rng, SeedFromStringStable) {
  EXPECT_EQ(seed_from_string("abc"), seed_from_string("abc"));
  EXPECT_NE(seed_from_string("abc"), seed_from_string("abd"));
}

TEST(Rng, LogNormalPositive) {
  Rng rng(77);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.log_normal(8.0, 1.0), 0.0);
}

// --- stats ---------------------------------------------------------------

TEST(Stats, MedianOdd) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Stats, MedianEvenAverages) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 10.0}), 2.5);
}

TEST(Stats, MedianSingle) {
  EXPECT_DOUBLE_EQ(median({42.0}), 42.0);
}

TEST(Stats, MedianIntMatchesPaperStyle) {
  // CryptoDefense's Table-I median is 6.5 — an even-count family.
  EXPECT_DOUBLE_EQ(median_int({5, 8, 6, 7}), 6.5);
}

TEST(Stats, MeanBasic) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, PercentileBounds) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
}

TEST(Stats, CumulativeFractionMonotone) {
  const auto points = cumulative_fraction({3, 1, 1, 2, 5});
  ASSERT_EQ(points.size(), 4u);  // distinct values 1,2,3,5
  EXPECT_DOUBLE_EQ(points.front().first, 1.0);
  EXPECT_DOUBLE_EQ(points.front().second, 0.4);
  EXPECT_DOUBLE_EQ(points.back().first, 5.0);
  EXPECT_DOUBLE_EQ(points.back().second, 1.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].first, points[i - 1].first);
    EXPECT_GT(points[i].second, points[i - 1].second);
  }
}

TEST(Stats, FrequencyCounts) {
  const auto freq = frequency<std::string>({"a", "b", "a", "a"});
  EXPECT_EQ(freq.at("a"), 3u);
  EXPECT_EQ(freq.at("b"), 1u);
}

TEST(Stats, TextBarWidths) {
  EXPECT_EQ(text_bar(0.0, 10), "..........");
  EXPECT_EQ(text_bar(1.0, 10), "##########");
  EXPECT_EQ(text_bar(0.5, 10), "#####.....");
  EXPECT_EQ(text_bar(2.0, 4), "####");   // clamped
  EXPECT_EQ(text_bar(-1.0, 4), "....");  // clamped
}

// --- text ------------------------------------------------------------------

TEST(Text, ProseHasRequestedSize) {
  Rng rng(1);
  EXPECT_EQ(synth_prose(rng, 500).size(), 500u);
}

TEST(Text, ProseLooksLikeText) {
  Rng rng(2);
  const std::string s = synth_prose(rng, 2000);
  for (char c : s) {
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == ' ' ||
                c == '.' || c == '\n')
        << "unexpected char " << static_cast<int>(c);
  }
}

TEST(Text, TokenLengthBounds) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const std::string t = synth_token(rng, 4, 8);
    EXPECT_GE(t.size(), 4u);
    EXPECT_LE(t.size(), 8u);
  }
}

TEST(Text, CsvHasHeaderAndRows) {
  Rng rng(4);
  const std::string csv = synth_csv(rng, 3, 4);
  const auto lines = std::count(csv.begin(), csv.end(), '\n');
  EXPECT_EQ(lines, 4);  // header + 3 rows
}

TEST(Text, WordIsCapitalized) {
  Rng rng(5);
  const std::string w = synth_word(rng);
  EXPECT_TRUE(w[0] >= 'A' && w[0] <= 'Z');
}

// --- result -------------------------------------------------------------

TEST(Result, DefaultStatusIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), Errc::ok);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Result, ErrorStatusCarriesMessage) {
  Status s(Errc::not_found, "missing.txt");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.to_string(), "not_found: missing.txt");
}

TEST(Result, ValueAccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(0), 42);
}

TEST(Result, ErrorPropagates) {
  Result<int> r(Status(Errc::access_denied, "nope"));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::access_denied);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(Result, ErrcNamesAreDistinct) {
  std::set<std::string_view> names;
  for (Errc e : {Errc::ok, Errc::not_found, Errc::already_exists,
                 Errc::access_denied, Errc::read_only, Errc::invalid_argument,
                 Errc::not_a_directory, Errc::is_a_directory, Errc::not_empty}) {
    names.insert(errc_name(e));
  }
  EXPECT_EQ(names.size(), 9u);
}

}  // namespace
}  // namespace cryptodrop
