// State-tracking tests: the rename/move bookkeeping that catches Class B
// (move out, encrypt, move back) and Class C (new file moved over the
// original) ransomware — §IV-C's "the state of the file must be carefully
// tracked each time a file is moved".
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "crypto/chacha20.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::core {
namespace {

constexpr const char* kRoot = "users/victim/documents";
constexpr const char* kTemp = "users/victim/appdata/temp";

class EngineStateTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  ScoringConfig config;
  std::unique_ptr<AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{7};

  void SetUp() override {
    config.protected_root = kRoot;
    config.score_threshold = 1000000;
    config.union_threshold = 1000000;
  }

  void attach() {
    engine = std::make_unique<AnalysisEngine>(config);
    fs.attach_filter(engine.get());
    pid = fs.register_process("subject");
  }

  std::string doc(const std::string& name) { return std::string(kRoot) + "/" + name; }
  std::string tmp(const std::string& name) { return std::string(kTemp) + "/" + name; }

  void put_prose(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, to_bytes(synth_prose(rng, n))).is_ok());
  }

  Bytes encrypt(ByteView plain) {
    return crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12), plain);
  }
};

// --- Class B: move out, transform, move back -----------------------------

TEST_F(EngineStateTest, ClassBRoundTripDetectsTypeAndSimilarity) {
  attach();
  put_prose(doc("a/report.txt"), 30000);
  ASSERT_TRUE(fs.rename(pid, doc("a/report.txt"), tmp("stage.tmp")).is_ok());
  // Encrypt in the staging area: none of these ops are under the root,
  // so the engine sees nothing...
  const Bytes ct = encrypt(ByteView(*fs.read_unfiltered(tmp("stage.tmp"))));
  ASSERT_TRUE(fs.write_file(pid, tmp("stage.tmp"), ByteView(ct)).is_ok());
  EXPECT_EQ(engine->process_report(pid).type_change_events, 0u);
  // ...until the file returns. The comparison runs against the tracked
  // pre-departure state despite the name change.
  ASSERT_TRUE(fs.rename(pid, tmp("stage.tmp"), doc("a/QQQQ.ctbl")).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
  EXPECT_EQ(report.similarity_drop_events, 1u);
}

TEST_F(EngineStateTest, ClassBUnmodifiedRoundTripScoresNothing) {
  // A file parked outside and brought back untouched (sync tools do
  // this) must not score: content pointer identity short-circuits.
  attach();
  put_prose(doc("b/file.txt"), 20000);
  ASSERT_TRUE(fs.rename(pid, doc("b/file.txt"), tmp("parked")).is_ok());
  ASSERT_TRUE(fs.rename(pid, tmp("parked"), doc("b/file.txt")).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
}

TEST_F(EngineStateTest, ClassBEntropyFoldsAcrossBoundary) {
  // Departing plaintext feeds the read mean; arriving ciphertext feeds
  // the write mean — the delta fires even though the process never
  // issues a read or write op inside the root.
  attach();
  for (int i = 0; i < 3; ++i) {
    put_prose(doc("c/f" + std::to_string(i) + ".txt"), 25000);
  }
  for (int i = 0; i < 3; ++i) {
    const std::string src = doc("c/f" + std::to_string(i) + ".txt");
    const std::string staged = tmp("s" + std::to_string(i));
    ASSERT_TRUE(fs.rename(pid, src, staged).is_ok());
    const Bytes ct = encrypt(ByteView(*fs.read_unfiltered(staged)));
    ASSERT_TRUE(fs.write_file(pid, staged, ByteView(ct)).is_ok());
    ASSERT_TRUE(fs.rename(pid, staged, src + ".enc").is_ok());
  }
  const ProcessReport report = engine->process_report(pid);
  EXPECT_GE(report.entropy_events, 1u);
  EXPECT_GT(report.write_entropy_mean, report.read_entropy_mean);
}

TEST_F(EngineStateTest, ClassBCanReachUnion) {
  attach();
  for (int i = 0; i < 3; ++i) {
    put_prose(doc("d/f" + std::to_string(i) + ".txt"), 25000);
  }
  for (int i = 0; i < 3; ++i) {
    const std::string src = doc("d/f" + std::to_string(i) + ".txt");
    const std::string staged = tmp("u" + std::to_string(i));
    ASSERT_TRUE(fs.rename(pid, src, staged).is_ok());
    const Bytes ct = encrypt(ByteView(*fs.read_unfiltered(staged)));
    ASSERT_TRUE(fs.write_file(pid, staged, ByteView(ct)).is_ok());
    ASSERT_TRUE(fs.rename(pid, staged, src).is_ok());
  }
  EXPECT_TRUE(engine->process_report(pid).union_triggered);
}

// --- Class C: independent output stream ------------------------------------

TEST_F(EngineStateTest, ClassCMoveOverOriginalLinksPreImage) {
  // The 41/63 variant: ciphertext written to a new file, then renamed
  // over the original. The engine judges the incoming content against
  // the replaced file's pre-image.
  attach();
  put_prose(doc("e/data.txt"), 30000);
  const Bytes plain = *fs.read_unfiltered(doc("e/data.txt"));
  ASSERT_TRUE(fs.write_file(pid, doc("e/data.txt.enc"), encrypt(ByteView(plain))).is_ok());
  ASSERT_TRUE(fs.rename(pid, doc("e/data.txt.enc"), doc("e/data.txt")).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
  EXPECT_EQ(report.similarity_drop_events, 1u);
}

TEST_F(EngineStateTest, ClassCDeleteOriginalEvadesLinkageButScoresDeletes) {
  // The 22/63 union-evading variant: no pre-image linkage is possible,
  // but deletions and high-entropy writes still accumulate.
  attach();
  put_prose(doc("f/data.txt"), 30000);
  const Bytes plain = *fs.read_unfiltered(doc("f/data.txt"));
  ASSERT_TRUE(fs.read_file(pid, doc("f/data.txt")).is_ok());
  ASSERT_TRUE(fs.write_file(pid, doc("f/data.txt.enc"), encrypt(ByteView(plain))).is_ok());
  ASSERT_TRUE(fs.remove(pid, doc("f/data.txt")).is_ok());
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 0u);
  EXPECT_EQ(report.similarity_drop_events, 0u);
  EXPECT_EQ(report.deletion_events, 1u);
  EXPECT_GE(report.entropy_events, 1u);
  EXPECT_FALSE(report.union_triggered);
}

// --- misc state-machine behaviors -----------------------------------------

TEST_F(EngineStateTest, MoveWithinRootWithoutChangeScoresNothing) {
  attach();
  put_prose(doc("g/a.txt"), 20000);
  ASSERT_TRUE(fs.rename(pid, doc("g/a.txt"), doc("g/renamed.txt")).is_ok());
  ASSERT_TRUE(fs.rename(pid, doc("g/renamed.txt"), doc("h/moved.txt")).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
}

TEST_F(EngineStateTest, InPlaceRenameAfterEncryptionStillCompares) {
  // Class A with rename habit: encrypt through a handle, close (compare
  // happens), then rename — the rename must not double-score.
  attach();
  put_prose(doc("i/a.txt"), 20000);
  auto h = fs.open(pid, doc("i/a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(),
                       encrypt(ByteView(*fs.read_unfiltered(doc("i/a.txt")))))
                  .is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  const auto after_close = engine->process_report(pid);
  ASSERT_TRUE(fs.rename(pid, doc("i/a.txt"), doc("i/a.txt.vvv")).is_ok());
  const auto after_rename = engine->process_report(pid);
  EXPECT_EQ(after_close.type_change_events, after_rename.type_change_events);
  EXPECT_EQ(after_close.similarity_drop_events, after_rename.similarity_drop_events);
}

TEST_F(EngineStateTest, RemovedFileStateIsDropped) {
  attach();
  put_prose(doc("j/a.txt"), 20000);
  ASSERT_TRUE(fs.remove(pid, doc("j/a.txt")).is_ok());
  // Re-creating a file at the same path gets a fresh id and no stale
  // baseline: writing ciphertext there is "new file creation", no
  // type-change comparison.
  ASSERT_TRUE(fs.write_file(pid, doc("j/a.txt"), rng.bytes(20000)).is_ok());
  EXPECT_EQ(engine->process_report(pid).type_change_events, 0u);
}

TEST_F(EngineStateTest, TwoProcessesScoredIndependently) {
  attach();
  const vfs::ProcessId other = fs.register_process("bystander");
  put_prose(doc("k/a.txt"), 20000);
  put_prose(doc("k/b.txt"), 20000);
  // Subject encrypts a.txt; bystander reads b.txt.
  ASSERT_TRUE(fs.read_file(other, doc("k/b.txt")).is_ok());
  auto h = fs.open(pid, doc("k/a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(),
                       encrypt(ByteView(*fs.read_unfiltered(doc("k/a.txt")))))
                  .is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_GT(engine->score(pid), 0);
  EXPECT_EQ(engine->score(other), 0);
  // Both processes show up in the snapshot, scored independently.
  EXPECT_EQ(engine->snapshot().processes.size(), 2u);
}

TEST_F(EngineStateTest, ReportForUnknownProcessIsEmpty) {
  attach();
  const ProcessReport report = engine->process_report(424242);
  EXPECT_EQ(report.score, 0);
  EXPECT_FALSE(report.suspended);
  EXPECT_EQ(report.threshold, config.score_threshold);
}

TEST_F(EngineStateTest, BaselineSharedAcrossProcessesByFile) {
  // Process A opens for write (baseline captured); process B encrypts.
  // B is the one scored — indicators attribute to the acting process.
  attach();
  const vfs::ProcessId b = fs.register_process("b");
  put_prose(doc("l/a.txt"), 20000);
  auto ha = fs.open(pid, doc("l/a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(ha.is_ok());
  ASSERT_TRUE(fs.close(pid, ha.value()).is_ok());
  auto hb = fs.open(b, doc("l/a.txt"), vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(hb.is_ok());
  ASSERT_TRUE(fs.write(b, hb.value(),
                       encrypt(ByteView(*fs.read_unfiltered(doc("l/a.txt")))))
                  .is_ok());
  ASSERT_TRUE(fs.close(b, hb.value()).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
  EXPECT_GT(engine->score(b), 0);
}

}  // namespace
}  // namespace cryptodrop::core
