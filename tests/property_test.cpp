// Parameterized property sweeps across the system's invariants:
// detection holds for every family x class combination, VFS invariants
// hold under randomized operation sequences, and scoring is monotone.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "harness/experiment.hpp"

namespace cryptodrop {
namespace {

harness::Environment& shared_env() {
  static harness::Environment env = [] {
    corpus::CorpusSpec spec;
    spec.total_files = 500;
    spec.total_dirs = 50;
    spec.compute_hashes = false;
    return harness::make_environment(spec, 31337);
  }();
  return env;
}

// --- detection holds for every (family, class) pair in the Table-I set ----

struct FamilyClassCase {
  std::string family;
  sim::BehaviorClass behavior;
};

class FamilyClassDetectionTest : public ::testing::TestWithParam<FamilyClassCase> {};

TEST_P(FamilyClassDetectionTest, DetectedWithBoundedLoss) {
  const auto& param = GetParam();
  sim::SampleSpec spec;
  spec.family = param.family;
  spec.behavior = param.behavior;
  spec.profile = sim::family_profile(param.family, param.behavior);
  spec.profile.behavior = param.behavior;
  spec.seed = seed_from_string(param.family) ^ static_cast<std::uint64_t>(param.behavior);
  const auto r = harness::run_ransomware_sample(shared_env(), spec, core::ScoringConfig{});
  EXPECT_TRUE(r.detected);
  // Bounded loss: well under 15% of the corpus for every combination.
  EXPECT_LT(r.files_lost, shared_env().corpus.file_count() * 15 / 100);
  EXPECT_FALSE(r.sample.ran_to_completion);
}

std::vector<FamilyClassCase> all_family_class_cases() {
  std::map<std::string, std::set<sim::BehaviorClass>> seen;
  for (const sim::SampleSpec& s : sim::table1_samples(1)) {
    seen[s.family].insert(s.behavior);
  }
  std::vector<FamilyClassCase> cases;
  for (const auto& [family, classes] : seen) {
    for (sim::BehaviorClass cls : classes) cases.push_back({family, cls});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Table1Pairs, FamilyClassDetectionTest,
    ::testing::ValuesIn(all_family_class_cases()),
    [](const ::testing::TestParamInfo<FamilyClassCase>& info) {
      std::string name = info.param.family + "_" +
                         std::string(sim::behavior_class_name(info.param.behavior));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// --- threshold monotonicity: lower threshold never loses more files ----------

class ThresholdSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ThresholdSweepTest, DetectionAtThreshold) {
  sim::SampleSpec spec;
  spec.family = "TeslaCrypt";
  spec.behavior = sim::BehaviorClass::A;
  spec.profile = sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  spec.seed = 4242;
  core::ScoringConfig config;
  config.score_threshold = GetParam();
  config.union_threshold = std::min(config.union_threshold, GetParam());
  const auto r = harness::run_ransomware_sample(shared_env(), spec, config);
  EXPECT_TRUE(r.detected);
  // Stash for the monotonicity check below via static map.
  static std::map<int, std::size_t>& losses = *new std::map<int, std::size_t>();
  losses[GetParam()] = r.files_lost;
  for (auto it = losses.begin(); it != losses.end(); ++it) {
    for (auto jt = std::next(it); jt != losses.end(); ++jt) {
      EXPECT_LE(it->second, jt->second)
          << "threshold " << it->first << " vs " << jt->first;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdSweepTest,
                         ::testing::Values(50, 100, 200, 400));

// --- randomized VFS workload invariants ------------------------------------

class VfsFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VfsFuzzTest, RandomOperationSequencePreservesInvariants) {
  vfs::FileSystem fs;
  Rng rng(GetParam());
  const vfs::ProcessId pid = fs.register_process("fuzzer");
  std::vector<std::string> known_paths;
  std::vector<vfs::Handle> open_handles;

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t action = rng.uniform(0, 9);
    switch (action) {
      case 0: {  // create file
        const std::string path =
            "d" + std::to_string(rng.uniform(0, 5)) + "/f" + std::to_string(rng.uniform(0, 30));
        if (fs.write_file(pid, path, rng.bytes(rng.uniform(0, 2000))).is_ok()) {
          known_paths.push_back(path);
        }
        break;
      }
      case 1: {  // open
        if (known_paths.empty()) break;
        auto h = fs.open(pid, rng.pick(known_paths),
                         rng.chance(0.5) ? vfs::kRead : (vfs::kRead | vfs::kWrite));
        if (h) open_handles.push_back(h.value());
        break;
      }
      case 2: {  // read through a handle
        if (open_handles.empty()) break;
        (void)fs.read(pid, rng.pick(open_handles), rng.uniform(0, 512));
        break;
      }
      case 3: {  // write through a handle
        if (open_handles.empty()) break;
        (void)fs.write(pid, rng.pick(open_handles), rng.bytes(rng.uniform(0, 512)));
        break;
      }
      case 4: {  // close
        if (open_handles.empty()) break;
        const std::size_t i = static_cast<std::size_t>(
            rng.uniform(0, open_handles.size() - 1));
        (void)fs.close(pid, open_handles[i]);
        open_handles.erase(open_handles.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
      case 5: {  // remove
        if (known_paths.empty()) break;
        (void)fs.remove(pid, rng.pick(known_paths));
        break;
      }
      case 6: {  // rename
        if (known_paths.empty()) break;
        const std::string to =
            "d" + std::to_string(rng.uniform(0, 5)) + "/r" + std::to_string(rng.uniform(0, 30));
        if (fs.rename(pid, rng.pick(known_paths), to).is_ok()) {
          known_paths.push_back(to);
        }
        break;
      }
      case 7:  // mkdir
        (void)fs.mkdir(pid, "d" + std::to_string(rng.uniform(0, 8)));
        break;
      case 8: {  // seek
        if (open_handles.empty()) break;
        (void)fs.seek(pid, rng.pick(open_handles), rng.uniform(0, 4096));
        break;
      }
      case 9: {  // clone mid-stream: must not disturb the original
        vfs::FileSystem snapshot = fs.clone();
        EXPECT_EQ(snapshot.file_count(), fs.file_count());
        EXPECT_EQ(snapshot.open_handle_count(), 0u);
        break;
      }
    }

    // Invariants after every step:
    EXPECT_LE(fs.open_handle_count(), open_handles.size());
    for (const std::string& path : fs.list_files_recursive("")) {
      auto info = fs.stat(path);
      ASSERT_TRUE(info.is_ok()) << path;
      auto data = fs.read_unfiltered(path);
      ASSERT_NE(data, nullptr) << path;
      EXPECT_EQ(data->size(), info.value().size) << path;
    }
  }
  // Drain remaining handles; every close of a live handle succeeds once.
  for (const vfs::Handle& h : open_handles) (void)fs.close(pid, h);
  EXPECT_EQ(fs.open_handle_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, VfsFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- engine never flags a no-op or read-only process -------------------------

class ReadOnlyProcessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReadOnlyProcessTest, PureReadersScoreZero) {
  vfs::FileSystem fs = shared_env().base_fs.clone();
  core::AnalysisEngine engine((core::ScoringConfig()));
  fs.attach_filter(&engine);
  const vfs::ProcessId pid = fs.register_process("reader");
  Rng rng(GetParam());
  const auto files = fs.list_files_recursive(shared_env().corpus.root);
  for (int i = 0; i < 60; ++i) {
    (void)fs.read_file(pid, rng.pick(files));
  }
  EXPECT_EQ(engine.score(pid), 0);
  EXPECT_FALSE(engine.is_suspended(pid));
  fs.detach_filter(&engine);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadOnlyProcessTest,
                         ::testing::Values(11, 12, 13, 14));

}  // namespace
}  // namespace cryptodrop
