// Tests for corpus generation and loss accounting.
#include <gtest/gtest.h>

#include <set>

#include "corpus/builder.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/sha256.hpp"
#include "entropy/entropy.hpp"
#include "vfs/path.hpp"

namespace cryptodrop::corpus {
namespace {

CorpusSpec small_spec(std::size_t files = 150, std::size_t dirs = 20) {
  CorpusSpec spec;
  spec.total_files = files;
  spec.total_dirs = dirs;
  spec.max_depth = 4;
  return spec;
}

TEST(CorpusBuilder, BuildsRequestedCounts) {
  vfs::FileSystem fs;
  Rng rng(1);
  const Corpus corpus = build_corpus(fs, small_spec(), rng);
  EXPECT_EQ(corpus.file_count(), 150u);
  EXPECT_EQ(fs.file_count(), 150u);
  // total_dirs includes the corpus root; the fs also has the root's
  // ancestors ("users", "users/victim") plus the global root "".
  EXPECT_EQ(fs.list_dirs_recursive(corpus.root).size() + 1, 20u);
}

TEST(CorpusBuilder, PaperScaleCountsAndTree) {
  vfs::FileSystem fs;
  Rng rng(2);
  CorpusSpec spec;  // paper defaults: 5,099 files, 511 dirs
  spec.compute_hashes = false;
  const Corpus corpus = build_corpus(fs, spec, rng);
  EXPECT_EQ(corpus.file_count(), 5099u);
  EXPECT_EQ(fs.list_dirs_recursive(corpus.root).size() + 1, 511u);
  EXPECT_GT(corpus.total_bytes(), 10u * 1024 * 1024);
}

TEST(CorpusBuilder, DeterministicForSeed) {
  vfs::FileSystem fs1, fs2;
  Rng r1(7), r2(7);
  const Corpus c1 = build_corpus(fs1, small_spec(), r1);
  const Corpus c2 = build_corpus(fs2, small_spec(), r2);
  ASSERT_EQ(c1.manifest.size(), c2.manifest.size());
  for (std::size_t i = 0; i < c1.manifest.size(); ++i) {
    EXPECT_EQ(c1.manifest[i].path, c2.manifest[i].path);
    EXPECT_EQ(*c1.manifest[i].original, *c2.manifest[i].original);
  }
}

TEST(CorpusBuilder, AllFilesUnderRoot) {
  vfs::FileSystem fs;
  Rng rng(3);
  const Corpus corpus = build_corpus(fs, small_spec(), rng);
  for (const ManifestEntry& entry : corpus.manifest) {
    EXPECT_TRUE(vfs::path_is_under(entry.path, corpus.root)) << entry.path;
    EXPECT_TRUE(fs.exists(entry.path));
  }
}

TEST(CorpusBuilder, ManifestHashesMatchContent) {
  vfs::FileSystem fs;
  Rng rng(4);
  const Corpus corpus = build_corpus(fs, small_spec(80, 10), rng);
  for (const ManifestEntry& entry : corpus.manifest) {
    const auto data = fs.read_unfiltered(entry.path);
    ASSERT_NE(data, nullptr);
    EXPECT_EQ(crypto::sha256_hex(ByteView(*data)), entry.sha256);
    EXPECT_EQ(data->size(), entry.size);
  }
}

TEST(CorpusBuilder, ExtensionsMatchKinds) {
  vfs::FileSystem fs;
  Rng rng(5);
  const Corpus corpus = build_corpus(fs, small_spec(), rng);
  for (const ManifestEntry& entry : corpus.manifest) {
    EXPECT_EQ(vfs::path_extension(entry.path), kind_extension(entry.kind));
  }
}

TEST(CorpusBuilder, SomeReadOnlyFiles) {
  vfs::FileSystem fs;
  Rng rng(6);
  CorpusSpec spec = small_spec(400, 30);
  spec.read_only_fraction = 0.1;
  const Corpus corpus = build_corpus(fs, spec, rng);
  std::size_t read_only = 0;
  for (const ManifestEntry& entry : corpus.manifest) {
    if (entry.read_only) {
      ++read_only;
      EXPECT_TRUE(fs.stat(entry.path).value().read_only);
    }
  }
  EXPECT_GT(read_only, 10u);
  EXPECT_LT(read_only, 100u);
}

TEST(CorpusBuilder, TextKindsIncludeSub512ByteFiles) {
  // The §V-C CTB-Locker experiment depends on small .txt/.md files
  // existing in the default mix.
  vfs::FileSystem fs;
  Rng rng(7);
  CorpusSpec spec = small_spec(2000, 60);
  spec.compute_hashes = false;
  const Corpus corpus = build_corpus(fs, spec, rng);
  std::size_t small_text = 0;
  for (const ManifestEntry& entry : corpus.manifest) {
    if ((entry.kind == FileKind::txt || entry.kind == FileKind::md) &&
        entry.size < 512) {
      ++small_text;
    }
  }
  EXPECT_GT(small_text, 5u);
}

TEST(CorpusBuilder, MinFileSizeFilterEliminatesSmallFiles) {
  vfs::FileSystem fs;
  Rng rng(8);
  CorpusSpec spec = small_spec(500, 30);
  spec.min_file_size = 512;
  spec.compute_hashes = false;
  const Corpus corpus = build_corpus(fs, spec, rng);
  for (const ManifestEntry& entry : corpus.manifest) {
    EXPECT_GE(entry.size, 512u) << entry.path;
  }
}

TEST(CorpusBuilder, MixContainsAllMajorKindGroups) {
  vfs::FileSystem fs;
  Rng rng(9);
  CorpusSpec spec = small_spec(2000, 50);
  spec.compute_hashes = false;
  const Corpus corpus = build_corpus(fs, spec, rng);
  std::set<FileKind> kinds;
  for (const ManifestEntry& entry : corpus.manifest) kinds.insert(entry.kind);
  // All 26 kinds should appear in a 2,000-file draw.
  EXPECT_GE(kinds.size(), 20u);
}

TEST(CorpusBuilder, RespectsMaxDepth) {
  vfs::FileSystem fs;
  Rng rng(10);
  CorpusSpec spec = small_spec(200, 40);
  spec.max_depth = 3;
  const Corpus corpus = build_corpus(fs, spec, rng);
  const std::size_t root_depth = vfs::path_depth(spec.root);
  for (const std::string& dir : fs.list_dirs_recursive(corpus.root)) {
    EXPECT_LE(vfs::path_depth(dir), root_depth + spec.max_depth);
  }
}

// --- loss accounting -----------------------------------------------------

class LossTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  Corpus corpus;
  vfs::ProcessId pid = 0;

  void SetUp() override {
    Rng rng(11);
    corpus = build_corpus(fs, small_spec(60, 8), rng);
    pid = fs.register_process("mutator");
  }
};

TEST_F(LossTest, PristineCorpusHasNoLoss) {
  EXPECT_EQ(count_files_lost(fs, corpus), 0u);
}

TEST_F(LossTest, CloneIsAlsoPristine) {
  vfs::FileSystem clone = fs.clone();
  EXPECT_EQ(count_files_lost(clone, corpus), 0u);
}

TEST_F(LossTest, OverwrittenFileIsLost) {
  const std::string& victim = corpus.manifest[0].path;
  ASSERT_TRUE(fs.set_read_only(victim, false).is_ok());
  ASSERT_TRUE(fs.write_file(pid, victim, to_bytes("encrypted!")).is_ok());
  EXPECT_EQ(count_files_lost(fs, corpus), 1u);
  const auto lost = lost_file_indices(fs, corpus);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 0u);
}

TEST_F(LossTest, DeletedFileIsLost) {
  const std::string& victim = corpus.manifest[5].path;
  ASSERT_TRUE(fs.set_read_only(victim, false).is_ok());
  ASSERT_TRUE(fs.remove(pid, victim).is_ok());
  EXPECT_EQ(count_files_lost(fs, corpus), 1u);
}

TEST_F(LossTest, MovedFileIsNotLost) {
  // Content intact elsewhere (even outside the corpus root) => not lost,
  // matching the paper's SHA-256 presence check semantics.
  const std::string& victim = corpus.manifest[3].path;
  ASSERT_TRUE(fs.rename(pid, victim, "quarantine/moved.bin").is_ok());
  EXPECT_EQ(count_files_lost(fs, corpus), 0u);
}

TEST_F(LossTest, RenamedInPlaceIsNotLost) {
  const std::string& victim = corpus.manifest[4].path;
  ASSERT_TRUE(fs.rename(pid, victim, victim + ".renamed").is_ok());
  EXPECT_EQ(count_files_lost(fs, corpus), 0u);
}

TEST_F(LossTest, EncryptEverythingLosesEverything) {
  crypto::ChaCha20 cipher(to_bytes("k"), to_bytes("n"));
  for (const ManifestEntry& entry : corpus.manifest) {
    ASSERT_TRUE(fs.set_read_only(entry.path, false).is_ok());
    ASSERT_TRUE(
        fs.write_file(pid, entry.path, cipher.transform(ByteView(*entry.original)))
            .is_ok());
  }
  EXPECT_EQ(count_files_lost(fs, corpus), corpus.file_count());
}

TEST_F(LossTest, NewFilesDoNotAffectLoss) {
  ASSERT_TRUE(fs.write_file(pid, corpus.root + "/RANSOM_NOTE.txt",
                            to_bytes("pay up")).is_ok());
  EXPECT_EQ(count_files_lost(fs, corpus), 0u);
}

// --- generator content sanity (entropy profiles) ---------------------------

TEST(Generators, SizesApproximatelyHonored) {
  Rng rng(12);
  for (FileKind kind : all_kinds()) {
    const Bytes content = generate_content(kind, 20000, rng);
    EXPECT_GE(content.size(), 19000u) << kind_extension(kind);
    EXPECT_LE(content.size(), 22000u) << kind_extension(kind);
  }
}

TEST(Generators, CompressedKindsAreHighEntropy) {
  Rng rng(13);
  for (FileKind kind : {FileKind::pdf, FileKind::docx, FileKind::jpg,
                        FileKind::mp3, FileKind::zip, FileKind::gz}) {
    const Bytes content = generate_content(kind, 100000, rng);
    EXPECT_GT(entropy::shannon(ByteView(content)), 7.0) << kind_extension(kind);
  }
}

TEST(Generators, TextKindsAreLowEntropy) {
  Rng rng(14);
  for (FileKind kind : {FileKind::txt, FileKind::md, FileKind::csv,
                        FileKind::log, FileKind::html}) {
    const Bytes content = generate_content(kind, 50000, rng);
    EXPECT_LT(entropy::shannon(ByteView(content)), 5.5) << kind_extension(kind);
  }
}

TEST(Generators, LegacyOfficeMidEntropy) {
  Rng rng(15);
  const Bytes content = generate_content(FileKind::doc, 100000, rng);
  const double e = entropy::shannon(ByteView(content));
  EXPECT_GT(e, 3.0);
  EXPECT_LT(e, 7.5);
}

TEST(Generators, BmpIsLowEntropyImage) {
  Rng rng(16);
  const Bytes content = generate_content(FileKind::bmp, 100000, rng);
  EXPECT_LT(entropy::shannon(ByteView(content)), 4.0);
}

TEST(Generators, SampleSizeRespectsKindBounds) {
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    const std::size_t s = sample_size(FileKind::txt, rng);
    EXPECT_GE(s, 64u);
    EXPECT_LE(s, 512u * 1024);
  }
}

TEST(Generators, DistinctSeedsDistinctContent) {
  Rng a(18), b(19);
  EXPECT_NE(generate_content(FileKind::pdf, 5000, a),
            generate_content(FileKind::pdf, 5000, b));
}

TEST(Generators, DefaultWeightsCoverAllKinds) {
  std::set<FileKind> weighted;
  for (const KindWeight& kw : default_type_weights()) {
    EXPECT_GT(kw.weight, 0.0);
    weighted.insert(kw.kind);
  }
  EXPECT_EQ(weighted.size(), all_kinds().size());
}

}  // namespace
}  // namespace cryptodrop::corpus
