// Chaos campaigns (ctest label: chaos): the zoo and the benign suite
// replayed over a faulted substrate. The detector's results must hold —
// full TPR, no new false positives, comparable files lost — and the
// whole campaign must stay bit-identical at any job count, fault stream
// included.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "harness/chaos.hpp"
#include "harness/experiment.hpp"
#include "harness/runner.hpp"
#include "sim/benign/benign.hpp"
#include "sim/ransomware/families.hpp"
#include "simhash/digest_cache.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::harness {
namespace {

constexpr double kFaultRate = 0.10;
constexpr std::uint64_t kFaultSeed = 2016;

class ChaosTest : public ::testing::Test {
 protected:
  static Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 400;
    spec.total_dirs = 40;
    spec.compute_hashes = false;
    env = new Environment(make_environment(spec, 123));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  /// An even slice through the Table-I zoo (preserves family variety).
  static std::vector<sim::SampleSpec> zoo_subset(std::size_t count) {
    const std::vector<sim::SampleSpec> all = sim::table1_samples(1);
    std::vector<sim::SampleSpec> picked;
    const double stride =
        static_cast<double>(all.size()) / static_cast<double>(count);
    for (std::size_t i = 0; i < count; ++i) {
      picked.push_back(all[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
    }
    return picked;
  }

  static FaultCampaignOptions chaos_options() {
    FaultCampaignOptions options;
    options.plan = vfs::FaultPlan::uniform(kFaultRate, kFaultSeed);
    return options;
  }
};

Environment* ChaosTest::env = nullptr;

std::uint64_t total_faults(const obs::MetricsSnapshot& snap) {
  std::uint64_t total = 0;
  for (const obs::CounterSnapshot& c : snap.counters) {
    if (c.name.rfind("faults_injected_total.", 0) == 0) total += c.value;
  }
  return total;
}

TEST_F(ChaosTest, ZooKeepsFullTPRUnderFaults) {
  const auto specs = zoo_subset(10);
  const auto results =
      run_campaign_faulted(*env, specs, core::ScoringConfig{}, chaos_options());
  ASSERT_EQ(results.size(), specs.size());
  std::size_t detected = 0;
  for (const auto& r : results) {
    EXPECT_TRUE(r.detected) << r.family << " escaped under faults";
    detected += r.detected ? 1 : 0;
  }
  EXPECT_EQ(detected, specs.size());  // 100% TPR at a 10% fault rate
  // Fault counts are metrics; -DCRYPTODROP_NO_METRICS compiles them out
  // (the faults themselves are still injected).
  if (obs::kMetricsEnabled) {
    EXPECT_GT(total_faults(merged_metrics(results)), 0u)
        << "campaign ran fault-free; the chaos plan was not applied";
  }
}

TEST_F(ChaosTest, FilesLostStaysComparableToFaultFree) {
  const auto specs = zoo_subset(10);
  const core::ScoringConfig config;
  const auto faulted =
      run_campaign_faulted(*env, specs, config, chaos_options());
  const auto clean = run_campaign_parallel(*env, specs, config);
  const double faulted_median = median(files_lost_values(faulted));
  const double clean_median = median(files_lost_values(clean));
  // Faults can nudge loss both ways (failed encryption writes lose
  // fewer files; delayed detection loses more) but must not change its
  // order of magnitude.
  EXPECT_LE(faulted_median, clean_median * 2.0 + 4.0);
  EXPECT_GE(faulted_median + 4.0, clean_median / 2.0);
}

TEST_F(ChaosTest, BenignSuiteAddsNoNewFalsePositives) {
  const auto workloads = sim::all_benign_workloads();
  const core::ScoringConfig config;
  const auto faulted =
      run_benign_suite_faulted(*env, workloads, config, 9, chaos_options());
  const auto clean = run_benign_suite_parallel(*env, workloads, config, 9);
  ASSERT_EQ(faulted.size(), clean.size());
  for (std::size_t i = 0; i < faulted.size(); ++i) {
    EXPECT_EQ(faulted[i].app, clean[i].app);
    if (faulted[i].detected && !faulted[i].expected_false_positive) {
      EXPECT_TRUE(clean[i].detected)
          << faulted[i].app << " became a false positive only under faults";
    }
  }
}

TEST_F(ChaosTest, CampaignIsBitIdenticalAcrossJobCounts) {
  const auto specs = zoo_subset(8);
  const core::ScoringConfig config;
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 3;
  const auto r1 =
      run_campaign_faulted(*env, specs, config, chaos_options(), serial);
  const auto r3 =
      run_campaign_faulted(*env, specs, config, chaos_options(), parallel);
  ASSERT_EQ(r1.size(), r3.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].detected, r3[i].detected) << i;
    EXPECT_EQ(r1[i].files_lost, r3[i].files_lost) << i;
    EXPECT_EQ(r1[i].final_score, r3[i].final_score) << i;
    EXPECT_EQ(r1[i].union_triggered, r3[i].union_triggered) << i;
  }
  // The full counter picture — engine counters and injected-fault
  // counters alike — is part of the determinism contract.
  const obs::MetricsSnapshot m1 = merged_metrics(r1);
  const obs::MetricsSnapshot m3 = merged_metrics(r3);
  ASSERT_EQ(m1.counters.size(), m3.counters.size());
  for (std::size_t i = 0; i < m1.counters.size(); ++i) {
    EXPECT_EQ(m1.counters[i].name, m3.counters[i].name);
    EXPECT_EQ(m1.counters[i].value, m3.counters[i].value) << m1.counters[i].name;
  }
  if (obs::kMetricsEnabled) {
    EXPECT_GT(total_faults(m1), 0u);
  }
}

TEST_F(ChaosTest, BenignSuiteIsBitIdenticalAcrossJobCounts) {
  const auto workloads = sim::all_benign_workloads();
  const core::ScoringConfig config;
  RunnerOptions serial;
  serial.jobs = 1;
  RunnerOptions parallel;
  parallel.jobs = 3;
  const auto r1 =
      run_benign_suite_faulted(*env, workloads, config, 9, chaos_options(), serial);
  const auto r3 =
      run_benign_suite_faulted(*env, workloads, config, 9, chaos_options(), parallel);
  ASSERT_EQ(r1.size(), r3.size());
  for (std::size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].detected, r3[i].detected) << r1[i].app;
    EXPECT_EQ(r1[i].final_score, r3[i].final_score) << r1[i].app;
  }
  const obs::MetricsSnapshot m1 = merged_metrics(r1);
  const obs::MetricsSnapshot m3 = merged_metrics(r3);
  ASSERT_EQ(m1.counters.size(), m3.counters.size());
  for (std::size_t i = 0; i < m1.counters.size(); ++i) {
    EXPECT_EQ(m1.counters[i].value, m3.counters[i].value) << m1.counters[i].name;
  }
}

TEST_F(ChaosTest, DigestCacheNeverStaleAfterTruncateThenRewrite) {
  // Regression guard for the close-path digest-retention optimisation:
  // the engine now keeps the freshly measured digest as the next
  // baseline, and the shared DigestCache is keyed by content SHA-256 —
  // neither may ever hand back the *old* content's digest after a
  // truncate-then-rewrite, or the similarity indicator would compare
  // ransomware output against itself and stay silent.
  core::ScoringConfig config;
  config.protected_root = "users/victim/documents";
  config.score_threshold = 1000000;  // indicators only; no suspension
  config.union_threshold = 1000000;
  config.share_digest_cache = true;

  Rng rng(777);
  const Bytes prose = to_bytes(synth_prose(rng, 30000));
  const Bytes noise = rng.bytes(30000);
  const std::string path = "users/victim/documents/ledger.txt";

  for (int round = 0; round < 2; ++round) {
    // Two rounds over the same content through one process-wide cache:
    // round 2 replays round 1's exact bytes, so every digest lookup is
    // a cache hit — the stalest path possible.
    vfs::FileSystem fs;
    core::AnalysisEngine engine(config);
    fs.attach_filter(&engine);
    const vfs::ProcessId pid = fs.register_process("subject");
    ASSERT_TRUE(fs.put_file_raw(path, prose).is_ok());
    ASSERT_TRUE(fs.read_file(pid, path).is_ok());

    // Truncate-then-rewrite with unrelated bytes: the baseline digest
    // (captured pre-truncate) must be compared against the *new*
    // content's digest, never a stale cached one.
    auto h = fs.open(pid, path, vfs::kWrite | vfs::kTruncate);
    ASSERT_TRUE(h.is_ok());
    ASSERT_TRUE(fs.write(pid, h.value(), ByteView(noise)).is_ok());
    ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
    EXPECT_EQ(engine.process_report(pid).similarity_drop_events, 1u)
        << "round " << round;

    // Rewrite back to the original prose: the retained baseline is now
    // the noise digest, so similarity must drop again — a stale "prose"
    // baseline would instead report a perfect match here.
    auto h2 = fs.open(pid, path, vfs::kWrite | vfs::kTruncate);
    ASSERT_TRUE(h2.is_ok());
    ASSERT_TRUE(fs.write(pid, h2.value(), ByteView(prose)).is_ok());
    ASSERT_TRUE(fs.close(pid, h2.value()).is_ok());
    EXPECT_EQ(engine.process_report(pid).similarity_drop_events, 2u)
        << "round " << round;
  }

  // Cache-level check of the same hazard, content-addressed directly.
  simhash::DigestCache cache(64);
  const auto before = cache.get_or_compute(ByteView(prose));
  const auto after = cache.get_or_compute(ByteView(noise));
  ASSERT_TRUE(before.has_value());
  ASSERT_TRUE(after.has_value());
  EXPECT_FALSE(*before == *after);
  const auto fresh = simhash::SimilarityDigest::compute(ByteView(noise));
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(*after == *fresh);
  const auto replay = cache.get_or_compute(ByteView(prose));
  ASSERT_TRUE(replay.has_value());
  EXPECT_TRUE(*replay == *before);
}

TEST_F(ChaosTest, InvalidPlanIsRejectedBeforeAnyTrialRuns) {
  FaultCampaignOptions options;
  options.plan.write.io_error = 7.0;
  EXPECT_THROW(run_campaign_faulted(*env, zoo_subset(2), core::ScoringConfig{},
                                    options),
               std::invalid_argument);
  EXPECT_THROW(run_benign_suite_faulted(*env, sim::all_benign_workloads(),
                                        core::ScoringConfig{}, 9, options),
               std::invalid_argument);
}

}  // namespace
}  // namespace cryptodrop::harness
