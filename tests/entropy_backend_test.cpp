// Entropy backend API (DESIGN.md §14): golden scores per backend on the
// three canonical content kinds, streamed-accumulator equivalence with
// one-shot scoring, name round-trips, the documented DAA evasion, and
// ensemble-vote determinism across worker counts.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "crypto/chacha20.hpp"
#include "entropy/backend.hpp"
#include "entropy/entropy.hpp"
#include "harness/runner.hpp"

namespace cryptodrop::entropy {
namespace {

// Deterministic fixtures mirroring the corpus generator's content kinds:
// prose (plaintext), keystream with a structured ASCII header
// (compressed container), raw keystream (ciphertext).
Bytes plaintext_fixture() {
  Rng rng(123);
  return to_bytes(synth_prose(rng, 8192));
}

Bytes encrypted_fixture() {
  const Bytes key = to_bytes("entropy-backend-golden-test-key!");
  return crypto::ChaCha20(ByteView(key), ByteView()).keystream(8192);
}

Bytes compressed_fixture() {
  // 512-byte PK header with repeating member metadata, then keystream —
  // the shape arXiv 2210.13376 says plain Shannon confuses with
  // ciphertext.
  Bytes out = to_bytes("PK\x03\x04");
  while (out.size() < 512) {
    const Bytes entry = to_bytes("word/document" + std::to_string(out.size()) +
                                 ".xml deflate 1033 ");
    out.insert(out.end(), entry.begin(), entry.end());
  }
  out.resize(512);
  const Bytes key = to_bytes("entropy-backend-golden-test-key!");
  const Bytes body = crypto::ChaCha20(ByteView(key), ByteView(), 7).keystream(7680);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

TEST(EntropyBackend, NameRoundTrip) {
  for (BackendKind kind : all_backend_kinds()) {
    const auto parsed = backend_from_name(backend_name(kind));
    ASSERT_TRUE(parsed.has_value()) << backend_name(kind);
    EXPECT_EQ(*parsed, kind);
    EXPECT_EQ(make_backend(kind)->kind(), kind);
    EXPECT_EQ(make_backend(kind)->name(), backend_name(kind));
  }
  EXPECT_FALSE(backend_from_name("entropy").has_value());
  EXPECT_FALSE(backend_from_name("").has_value());
  EXPECT_FALSE(backend_from_name("Shannon").has_value());
}

TEST(EntropyBackend, ShannonBackendIsBitIdenticalToFreeFunction) {
  const auto backend = make_backend(BackendKind::shannon);
  for (const Bytes& data :
       {plaintext_fixture(), compressed_fixture(), encrypted_fixture()}) {
    EXPECT_EQ(backend->score(ByteView(data)), shannon(ByteView(data)));
  }
  EXPECT_EQ(backend->score(ByteView()), 0.0);
}

// Golden scores: every backend maps content onto the shared [0, 8]
// suspicion scale — prose low, ciphertext high. Values pinned from the
// deterministic fixtures; loose-ish tolerance absorbs libm variation.
struct Golden {
  BackendKind kind;
  double plaintext;
  double compressed;
  double encrypted;
};

TEST(EntropyBackend, GoldenScoresPerContentKind) {
  const Golden kGolden[] = {
      {BackendKind::shannon, 4.229704, 7.948327, 7.976218},
      {BackendKind::chi_square, 0.419853, 7.404361, 7.745370},
      {BackendKind::serial_correlation, 3.147954, 7.647985, 7.637359},
      {BackendKind::daa, 0.871094, 6.042969, 6.851563},
  };
  for (const Golden& g : kGolden) {
    const auto backend = make_backend(g.kind);
    EXPECT_NEAR(backend->score(ByteView(plaintext_fixture())), g.plaintext, 1e-4)
        << backend->name();
    EXPECT_NEAR(backend->score(ByteView(compressed_fixture())), g.compressed, 1e-4)
        << backend->name();
    EXPECT_NEAR(backend->score(ByteView(encrypted_fixture())), g.encrypted, 1e-4)
        << backend->name();
    // The ordering every backend must share, exact values aside. (Serial
    // correlation is exempt from the compressed < encrypted leg: byte
    // adjacency is near-zero for both, so the two land within noise of
    // each other — the backend discriminates structure, not density.)
    EXPECT_LT(g.plaintext, g.compressed);
    if (g.kind != BackendKind::serial_correlation) {
      EXPECT_LT(g.compressed, g.encrypted);
    }
    EXPECT_GE(g.plaintext, 0.0);
    EXPECT_LE(g.encrypted, 8.0);
  }
}

TEST(EntropyBackend, ChiSquareSeparatesCompressedFromEncryptedBetterThanShannon) {
  // The reason the backend exists: per-byte X² grows quadratically in
  // the structured fraction, so a container header costs far more score
  // than it costs Shannon entropy.
  const auto shannon_backend = make_backend(BackendKind::shannon);
  const auto chi = make_backend(BackendKind::chi_square);
  const Bytes compressed = compressed_fixture();
  const Bytes encrypted = encrypted_fixture();
  const double shannon_gap = shannon_backend->score(ByteView(encrypted)) -
                             shannon_backend->score(ByteView(compressed));
  const double chi_gap =
      chi->score(ByteView(encrypted)) - chi->score(ByteView(compressed));
  EXPECT_GT(chi_gap, 2.0 * shannon_gap);
}

TEST(EntropyBackend, AccumulatorMatchesOneShotAcrossChunkings) {
  // Streamed scoring must not depend on write sizes: feeding the same
  // bytes in any chunking yields exactly the one-shot score (the serial
  // backend's circular wrap term exists for this).
  const Bytes data = compressed_fixture();
  for (BackendKind kind : all_backend_kinds()) {
    const auto backend = make_backend(kind);
    const double one_shot = backend->score(ByteView(data));
    for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{600},
                              std::size_t{4096}, data.size()}) {
      const auto acc = backend->make_accumulator();
      for (std::size_t off = 0; off < data.size(); off += chunk) {
        acc->add(ByteView(data).subspan(off, std::min(chunk, data.size() - off)));
      }
      EXPECT_EQ(acc->total(), data.size()) << backend->name();
      EXPECT_DOUBLE_EQ(acc->score(), one_shot)
          << backend->name() << " chunk=" << chunk;
    }
  }
}

TEST(EntropyBackend, AccumulatorMatchesOneShotAtAdversarialSplits) {
  // The DAA tail ring is where chunk boundaries can go wrong: a split
  // exactly at, one before, or one after a window edge; writes smaller
  // than the window; chunks that straddle the head/tail boundary; and
  // degenerate windows of 1 and 2 bytes. Every backend must still score
  // the stream identically to the one-shot form at all of them.
  const Bytes data = compressed_fixture();
  for (std::size_t window : {std::size_t{1}, std::size_t{2}, std::size_t{256},
                             std::size_t{2048}, std::size_t{4096}}) {
    BackendOptions options;
    options.daa_window_bytes = window;
    for (BackendKind kind : all_backend_kinds()) {
      const auto backend = make_backend(kind, options);
      const double one_shot = backend->score(ByteView(data));
      // Split points chosen adversarially around the window edges and
      // the buffer ends; each defines a three-chunk feed.
      std::vector<std::size_t> cuts = {1,
                                       window > 1 ? window - 1 : 1,
                                       window,
                                       window + 1,
                                       2 * window - 1,
                                       2 * window + 1,
                                       data.size() - 1,
                                       data.size() - window,
                                       data.size() - window - 1};
      for (std::size_t a : cuts) {
        for (std::size_t b : cuts) {
          if (a > b || b > data.size()) continue;
          const auto acc = backend->make_accumulator();
          acc->add(ByteView(data).subspan(0, a));
          acc->add(ByteView(data).subspan(a, b - a));
          acc->add(ByteView(data).subspan(b, data.size() - b));
          ASSERT_EQ(acc->total(), data.size()) << backend->name();
          ASSERT_DOUBLE_EQ(acc->score(), one_shot)
              << backend->name() << " window=" << window << " cuts=" << a
              << "," << b;
        }
      }
      // Sub-window drip: every write smaller than the window, sized so
      // chunks continually straddle ring wrap points.
      if (window > 2) {
        const auto acc = backend->make_accumulator();
        const std::size_t step = window / 2 + 1;
        for (std::size_t off = 0; off < data.size(); off += step) {
          acc->add(ByteView(data).subspan(off, std::min(step, data.size() - off)));
        }
        ASSERT_DOUBLE_EQ(acc->score(), one_shot)
            << backend->name() << " window=" << window << " drip=" << step;
      }
    }
  }
}

TEST(EntropyBackend, DaaWindowOptionChangesScore) {
  const Bytes data = compressed_fixture();  // header only inside small windows
  BackendOptions narrow;
  narrow.daa_window_bytes = 256;
  BackendOptions wide;
  wide.daa_window_bytes = 4096;
  const double narrow_score =
      make_backend(BackendKind::daa, narrow)->score(ByteView(data));
  const double wide_score =
      make_backend(BackendKind::daa, wide)->score(ByteView(data));
  // The 256-byte head window is pure header (very structured); the
  // 4096-byte head window is mostly keystream.
  EXPECT_LT(narrow_score, wide_score);
}

TEST(EntropyBackend, DaaPrependHeaderEvasion) {
  // arXiv 2303.17351's attack on differential area analysis: prepend a
  // low-entropy header to every ciphertext so the head window looks like
  // plaintext. min(head, tail) then reports the header's score — DAA is
  // blind by design, shannon still flags the blob, which is exactly why
  // the ensemble exists.
  Bytes attack = to_bytes(std::string(2048, 'A'));
  const Bytes body = encrypted_fixture();
  attack.insert(attack.end(), body.begin(), body.end());

  const double daa_score = make_backend(BackendKind::daa)->score(ByteView(attack));
  const double shannon_score =
      make_backend(BackendKind::shannon)->score(ByteView(attack));
  EXPECT_LT(daa_score, 1.0);     // head window = constant bytes, near zero
  EXPECT_GT(shannon_score, 6.0); // the blob is still 80% ciphertext

  // Streamed form agrees: chunked adds reproduce the evasion verdict.
  const auto acc = make_backend(BackendKind::daa)->make_accumulator();
  for (std::size_t off = 0; off < attack.size(); off += 512) {
    acc->add(ByteView(attack).subspan(off, 512));
  }
  EXPECT_DOUBLE_EQ(acc->score(), daa_score);
}

TEST(EntropyBackend, EnsembleVoteDeterministicAcrossJobs) {
  // The engine contract extends to ensembles: per-member means are
  // per-process state, so worker count cannot change a single verdict,
  // score, or vote. Run the same mini-campaign at 1 and 16 workers.
  corpus::CorpusSpec spec;
  spec.total_files = 200;
  spec.total_dirs = 20;
  spec.compute_hashes = false;
  const harness::Environment env = harness::make_environment(spec, 4242);

  std::vector<sim::SampleSpec> specs;
  for (const char* family : {"CryptoWall", "Filecoder", "Xorist"}) {
    sim::SampleSpec sample;
    sample.family = family;
    sample.behavior = sim::BehaviorClass::A;
    sample.profile = sim::family_profile(family, sim::BehaviorClass::A);
    sample.seed = 77;
    specs.push_back(std::move(sample));
  }

  core::ScoringConfig config;
  for (BackendKind kind : all_backend_kinds()) {
    config.entropy.ensemble.members.push_back(core::EnsembleMember{kind, 1.0});
  }
  config.entropy.ensemble.min_vote_weight = 0.5;

  harness::RunnerOptions serial;
  serial.jobs = 1;
  harness::RunnerOptions wide;
  wide.jobs = 16;
  const auto a = harness::run_campaign_parallel(env, specs, config, serial);
  const auto b = harness::run_campaign_parallel(env, specs, config, wide);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].detected, b[i].detected) << a[i].family;
    EXPECT_EQ(a[i].final_score, b[i].final_score) << a[i].family;
    EXPECT_EQ(a[i].files_lost, b[i].files_lost) << a[i].family;
    EXPECT_EQ(a[i].report.write_entropy_mean, b[i].report.write_entropy_mean)
        << a[i].family;
  }
  // And the ensemble is not a no-op on this campaign: something fired.
  EXPECT_TRUE(a[0].detected || a[1].detected || a[2].detected);
}

}  // namespace
}  // namespace cryptodrop::entropy
