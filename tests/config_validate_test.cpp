// ScoringConfig::validate(): every constructor of an engine (direct,
// session, harness, CLI) routes through it, so a nonsensical sweep
// fails fast with a reason instead of producing junk curves.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/engine.hpp"

namespace cryptodrop::core {
namespace {

TEST(ConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(ScoringConfig{}.validate().is_ok());
}

TEST(ConfigValidate, EmptyProtectedRootRejected) {
  ScoringConfig config;
  config.protected_root.clear();
  const Status st = config.validate();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::invalid_argument);
  EXPECT_FALSE(st.message().empty());
}

TEST(ConfigValidate, EmptyAdditionalRootRejected) {
  ScoringConfig config;
  config.additional_roots = {"users/victim/desktop", ""};
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(ConfigValidate, NegativePointsRejected) {
  const auto broken_by = [](auto mutate) {
    ScoringConfig config;
    mutate(config);
    return !config.validate().is_ok();
  };
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.entropy.points_write = -1; }));
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.points_type_change = -1; }));
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.points_similarity_drop = -1; }));
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.points_deletion = -1; }));
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.points_funneling = -1; }));
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.points_rate = -1; }));
  EXPECT_TRUE(broken_by([](ScoringConfig& c) { c.union_bonus = -1; }));
}

TEST(ConfigValidate, UnionThresholdAboveBaseRejected) {
  ScoringConfig config;
  config.score_threshold = 100;
  config.union_threshold = 170;
  EXPECT_FALSE(config.validate().is_ok());
  // Equal is fine (union indication then changes nothing).
  config.union_threshold = 100;
  EXPECT_TRUE(config.validate().is_ok());
  // And irrelevant when union indication is off.
  config.union_threshold = 170;
  config.enable_union = false;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(ConfigValidate, NonPositiveThresholdsRejected) {
  ScoringConfig config;
  config.score_threshold = 0;
  EXPECT_FALSE(config.validate().is_ok());
  config.score_threshold = 200;
  config.union_threshold = 0;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(ConfigValidate, ZeroSizeWindowsRejected) {
  ScoringConfig config;
  config.entropy.full_points_bytes = 0;
  EXPECT_FALSE(config.validate().is_ok());

  config = {};
  config.funnel_min_read_types = 0;
  EXPECT_FALSE(config.validate().is_ok());

  config = {};
  config.enable_rate_indicator = true;
  config.rate_window_micros = 0;
  EXPECT_FALSE(config.validate().is_ok());

  config = {};
  config.enable_rate_indicator = true;
  config.rate_min_files = 0;
  EXPECT_FALSE(config.validate().is_ok());

  // The rate windows are not checked while the indicator is off (the
  // ablation suite zeroes fields it does not use).
  config = {};
  config.enable_rate_indicator = false;
  config.rate_window_micros = 0;
  config.rate_min_files = 0;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(ConfigValidate, SimilarityAndBoostRanges) {
  ScoringConfig config;
  config.similarity_drop_max = 101;
  EXPECT_FALSE(config.validate().is_ok());
  config = {};
  config.similarity_drop_max = -1;
  EXPECT_FALSE(config.validate().is_ok());
  config = {};
  config.dynamic_unavailable_boost = -0.5;
  EXPECT_FALSE(config.validate().is_ok());
  config = {};
  config.entropy.delta_threshold = -0.1;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(ConfigValidate, EntropyNestedRules) {
  // min_score_bytes above full_points_bytes would exempt full-point
  // writes from scoring entirely.
  ScoringConfig config;
  config.entropy.full_points_bytes = 1024;
  config.entropy.min_score_bytes = 1025;
  EXPECT_FALSE(config.validate().is_ok());
  config.entropy.min_score_bytes = 1024;
  EXPECT_TRUE(config.validate().is_ok());

  config = {};
  config.entropy.daa_window_bytes = 0;
  EXPECT_FALSE(config.validate().is_ok());
}

TEST(ConfigValidate, EnsembleRules) {
  ScoringConfig config;
  config.entropy.ensemble.members = {
      {entropy::BackendKind::shannon, 1.0},
      {entropy::BackendKind::chi_square, 0.5},
  };
  EXPECT_TRUE(config.validate().is_ok());

  // Non-positive member weights are meaningless votes.
  config.entropy.ensemble.members[1].weight = 0.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.entropy.ensemble.members[1].weight = -1.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.entropy.ensemble.members[1].weight = 0.5;

  // A backend may appear at most once (one pair of means each).
  config.entropy.ensemble.members.push_back(
      {entropy::BackendKind::shannon, 2.0});
  EXPECT_FALSE(config.validate().is_ok());
  config.entropy.ensemble.members.pop_back();

  // Vote quorum must be a usable fraction.
  config.entropy.ensemble.min_vote_weight = 0.0;
  EXPECT_FALSE(config.validate().is_ok());
  config.entropy.ensemble.min_vote_weight = 1.5;
  EXPECT_FALSE(config.validate().is_ok());
  config.entropy.ensemble.min_vote_weight = 1.0;
  EXPECT_TRUE(config.validate().is_ok());

  // An empty member list is single-backend mode, and the quorum field
  // is then irrelevant.
  config.entropy.ensemble.members.clear();
  config.entropy.ensemble.min_vote_weight = 0.0;
  EXPECT_TRUE(config.validate().is_ok());
}

TEST(ConfigValidate, ActiveMembersResolvesSingleVsEnsemble) {
  EntropyConfig entropy_config;
  entropy_config.backend = entropy::BackendKind::daa;
  const auto single = entropy_config.active_members();
  ASSERT_EQ(single.size(), 1u);
  EXPECT_EQ(single[0].backend, entropy::BackendKind::daa);
  EXPECT_DOUBLE_EQ(single[0].weight, 1.0);

  entropy_config.ensemble.members = {
      {entropy::BackendKind::shannon, 1.0},
      {entropy::BackendKind::serial_correlation, 2.0},
  };
  const auto ensemble = entropy_config.active_members();
  ASSERT_EQ(ensemble.size(), 2u);
  EXPECT_EQ(ensemble[1].backend, entropy::BackendKind::serial_correlation);
  EXPECT_DOUBLE_EQ(ensemble[1].weight, 2.0);
}

TEST(ConfigValidate, EngineConstructorEnforcesIt) {
  ScoringConfig config;
  config.protected_root.clear();
  EXPECT_THROW(AnalysisEngine{config}, std::invalid_argument);
  config = {};
  config.score_threshold = 100;  // default union_threshold 170 > 100
  EXPECT_THROW(AnalysisEngine{config}, std::invalid_argument);
  config.union_threshold = 100;
  EXPECT_NO_THROW(AnalysisEngine{config});
}

}  // namespace
}  // namespace cryptodrop::core
