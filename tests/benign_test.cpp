// Tests for the benign workload simulators and the false-positive
// contract: exactly one expected detection (7-zip), no benign union.
#include <gtest/gtest.h>

#include <set>

#include "harness/experiment.hpp"
#include "sim/benign/benign.hpp"

namespace cryptodrop::sim {
namespace {

/// Shared mid-size environment (built once; workloads run on clones).
class BenignTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 600;
    spec.total_dirs = 60;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 77));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  harness::BenignRunResult run(const std::string& name,
                               core::ScoringConfig config = {}) {
    return harness::run_benign_workload(*env, benign_workload(name), config, 11);
  }
};

harness::Environment* BenignTest::env = nullptr;

TEST_F(BenignTest, ThirtyWorkloadsRegistered) {
  const auto workloads = all_benign_workloads();
  EXPECT_EQ(workloads.size(), 30u);
  std::set<std::string> names;
  for (const auto& w : workloads) names.insert(w.name);
  EXPECT_EQ(names.size(), 30u);  // unique
  // Spot-check the paper's list.
  EXPECT_TRUE(names.contains("7-zip"));
  EXPECT_TRUE(names.contains("Adobe Lightroom"));
  EXPECT_TRUE(names.contains("Microsoft Word"));
  EXPECT_TRUE(names.contains("VLC Media Player"));
}

TEST_F(BenignTest, Figure6SetIsTheFiveAnalyzedApps) {
  const auto five = figure6_workloads();
  ASSERT_EQ(five.size(), 5u);
  EXPECT_EQ(five[0].name, "Adobe Lightroom");
  EXPECT_EQ(five[4].name, "Microsoft Excel");
}

TEST_F(BenignTest, UnknownWorkloadThrows) {
  EXPECT_THROW(benign_workload("Solitaire"), std::out_of_range);
}

TEST_F(BenignTest, OnlySevenZipIsMarkedExpectedFalsePositive) {
  for (const auto& w : all_benign_workloads()) {
    EXPECT_EQ(w.expected_false_positive, w.name == "7-zip") << w.name;
  }
}

TEST_F(BenignTest, WordScoresZero) {
  const auto r = run("Microsoft Word");
  EXPECT_EQ(r.final_score, 0);
  EXPECT_FALSE(r.detected);
}

TEST_F(BenignTest, ImageMagickScoresZero) {
  const auto r = run("ImageMagick");
  EXPECT_EQ(r.final_score, 0);
  EXPECT_FALSE(r.detected);
}

TEST_F(BenignTest, ExcelScoresHighButBelowThreshold) {
  // Figure 6: Excel's safe-saves put it near (paper: 150) but under 200.
  const auto r = run("Microsoft Excel");
  EXPECT_GT(r.final_score, 60);
  EXPECT_LT(r.final_score, 200);
  EXPECT_FALSE(r.detected);
}

TEST_F(BenignTest, ITunesScoresLow) {
  const auto r = run("iTunes");
  EXPECT_LT(r.final_score, 60);
  EXPECT_FALSE(r.detected);
}

TEST_F(BenignTest, LightroomScoresModerately) {
  const auto r = run("Adobe Lightroom");
  EXPECT_LT(r.final_score, 200);
  EXPECT_FALSE(r.detected);
}

TEST_F(BenignTest, SevenZipIsTheExpectedFalsePositive) {
  const auto r = run("7-zip");
  EXPECT_TRUE(r.detected);
  EXPECT_TRUE(r.expected_false_positive);
  // Detected via accumulation, not union (§V-F: "no application
  // exhibited all three primary indicators").
  EXPECT_FALSE(r.union_triggered);
}

TEST_F(BenignTest, NoBenignWorkloadTriggersUnion) {
  for (const auto& w : all_benign_workloads()) {
    const auto r = run(w.name);
    EXPECT_FALSE(r.union_triggered) << w.name;
  }
}

TEST_F(BenignTest, ExactlyOneFalsePositiveAtPaperThreshold) {
  std::size_t detections = 0;
  for (const auto& w : all_benign_workloads()) {
    const auto r = run(w.name);
    if (r.detected) {
      ++detections;
      EXPECT_TRUE(r.expected_false_positive) << w.name;
    }
  }
  EXPECT_EQ(detections, 1u);
}

TEST_F(BenignTest, PureScannerScoresZero) {
  const auto r = run("Avast Anti-Virus");
  EXPECT_EQ(r.final_score, 0);
  // Funneling must not fire without writes under the root.
  EXPECT_EQ(r.report.funneling_events, 0u);
}

TEST_F(BenignTest, PureWriterScoresZero) {
  // uTorrent streams a high-entropy download but never reads: the
  // entropy delta can't arm without a read mean.
  const auto r = run("uTorrent");
  EXPECT_EQ(r.final_score, 0);
  EXPECT_EQ(r.report.entropy_events, 0u);
}

TEST_F(BenignTest, TrayAppsNeverTouchTheRoot) {
  for (const char* name : {"F.lux", "Skype", "Spotify",
                           "Private Internet Access VPN", "Piriform CCleaner"}) {
    const auto r = run(name);
    EXPECT_EQ(r.final_score, 0) << name;
    EXPECT_EQ(r.report.read_extensions.size() + r.report.write_extensions.size(), 0u)
        << name;
  }
}

TEST_F(BenignTest, HigherThresholdClearsSevenZip) {
  // The Figure-6 sweep direction: raising the non-union threshold trades
  // detection speed for fewer FPs.
  core::ScoringConfig lenient;
  lenient.score_threshold = 100000;
  lenient.union_threshold = 100000;
  const auto r = run("7-zip", lenient);
  EXPECT_FALSE(r.detected);
  EXPECT_GT(r.final_score, 200);  // would have been caught at the default
}

TEST_F(BenignTest, WorkloadsAreDeterministicPerSeed) {
  const auto r1 = run("Microsoft Excel");
  const auto r2 = run("Microsoft Excel");
  EXPECT_EQ(r1.final_score, r2.final_score);
}

}  // namespace
}  // namespace cryptodrop::sim
