// Per-indicator unit tests for the analysis engine: each of the three
// primary and two secondary indicators in isolation, plus union logic.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "crypto/chacha20.hpp"
#include "vfs/filesystem.hpp"

namespace cryptodrop::core {
namespace {

constexpr const char* kRoot = "users/victim/documents";

class EngineTest : public ::testing::Test {
 protected:
  vfs::FileSystem fs;
  ScoringConfig config;
  std::unique_ptr<AnalysisEngine> engine;
  vfs::ProcessId pid = 0;
  Rng rng{42};

  void SetUp() override {
    config.protected_root = kRoot;
    config.score_threshold = 1000000;  // indicators only; no suspension
    config.union_threshold = 1000000;
  }

  void attach() {
    engine = std::make_unique<AnalysisEngine>(config);
    fs.attach_filter(engine.get());
    pid = fs.register_process("subject");
  }

  std::string doc(const std::string& name) { return std::string(kRoot) + "/" + name; }

  void put_prose(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, to_bytes(synth_prose(rng, n))).is_ok());
  }

  void put_random(const std::string& path, std::size_t n) {
    ASSERT_TRUE(fs.put_file_raw(path, rng.bytes(n)).is_ok());
  }

  Bytes encrypted_copy(const std::string& path) {
    auto data = fs.read_unfiltered(path);
    return crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12), ByteView(*data));
  }

  /// Filtered whole-file read/write through the subject process.
  void subject_reads(const std::string& path) {
    ASSERT_TRUE(fs.read_file(pid, path).is_ok());
  }
  void subject_writes(const std::string& path, ByteView data) {
    ASSERT_TRUE(fs.write_file(pid, path, data).is_ok());
  }
  /// Class-A style in-place overwrite (read+write handle, no truncate).
  void subject_overwrites(const std::string& path, ByteView data) {
    auto h = fs.open(pid, path, vfs::kRead | vfs::kWrite);
    ASSERT_TRUE(h.is_ok());
    ASSERT_TRUE(fs.write(pid, h.value(), data).is_ok());
    ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  }
};

// --- entropy delta -------------------------------------------------------

TEST_F(EngineTest, EntropyDeltaFiresOnHighEntropyWriteAfterLowEntropyRead) {
  attach();
  put_prose(doc("a.txt"), 20000);
  subject_reads(doc("a.txt"));
  subject_writes(doc("out.bin"), rng.bytes(20000));
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.entropy_events, 1u);
  EXPECT_EQ(report.score, config.entropy.points_write);
  EXPECT_GT(report.write_entropy_mean, report.read_entropy_mean);
}

TEST_F(EngineTest, EntropyDeltaNeedsAtLeastOneRead) {
  // Pure writers (downloads, installers) can never trip the delta: the
  // comparison requires both means to exist (§IV-C.1).
  attach();
  subject_writes(doc("out.bin"), rng.bytes(50000));
  subject_writes(doc("out2.bin"), rng.bytes(50000));
  EXPECT_EQ(engine->process_report(pid).entropy_events, 0u);
  EXPECT_EQ(engine->score(pid), 0);
}

TEST_F(EngineTest, EntropyDeltaSilentWhenWritesMatchReads) {
  attach();
  put_random(doc("in.bin"), 30000);
  subject_reads(doc("in.bin"));
  subject_writes(doc("copy.bin"), ByteView(*fs.read_unfiltered(doc("in.bin"))));
  EXPECT_EQ(engine->process_report(pid).entropy_events, 0u);
}

TEST_F(EngineTest, EntropyDeltaSilentForLowEntropyWrites) {
  attach();
  put_prose(doc("a.txt"), 20000);
  subject_reads(doc("a.txt"));
  subject_writes(doc("notes.txt"), to_bytes(synth_prose(rng, 20000)));
  EXPECT_EQ(engine->process_report(pid).entropy_events, 0u);
}

TEST_F(EngineTest, EntropyDeltaScoresPerOperation) {
  attach();
  put_prose(doc("a.txt"), 20000);
  subject_reads(doc("a.txt"));
  auto h = fs.open(pid, doc("out.bin"), vfs::kCreate);
  ASSERT_TRUE(h.is_ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(8192)).is_ok());
  }
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->process_report(pid).entropy_events, 5u);
  EXPECT_EQ(engine->score(pid), 5 * config.entropy.points_write);
}

TEST_F(EngineTest, EntropyPointsScaleWithOperationSize) {
  attach();
  put_prose(doc("a.txt"), 20000);
  subject_reads(doc("a.txt"));
  // A 400-byte suspicious write scores ~1/10 of a >=4 KiB one.
  subject_writes(doc("tiny.bin"), rng.bytes(400));
  const int small_score = engine->score(pid);
  EXPECT_GE(small_score, 1);
  EXPECT_LT(small_score, config.entropy.points_write / 2);
  subject_writes(doc("big.bin"), rng.bytes(8192));
  EXPECT_EQ(engine->score(pid) - small_score, config.entropy.points_write);
}

TEST_F(EngineTest, RansomNotesDoNotMaskEntropyDelta) {
  // §IV-C.1's motivating case: low-entropy note writes must not drag
  // Pwrite down enough to hide the encryption signal.
  attach();
  for (int i = 0; i < 5; ++i) put_prose(doc("f" + std::to_string(i) + ".txt"), 30000);
  for (int i = 0; i < 5; ++i) {
    subject_writes(doc("NOTE" + std::to_string(i) + ".txt"),
                   to_bytes(synth_prose(rng, 1200)));
    subject_reads(doc("f" + std::to_string(i) + ".txt"));
    subject_writes(doc("f" + std::to_string(i) + ".txt.enc"), rng.bytes(30000));
  }
  EXPECT_GE(engine->process_report(pid).entropy_events, 3u);
}

TEST_F(EngineTest, EntropyDisabledByAblationFlag) {
  config.entropy.enabled = false;
  attach();
  put_prose(doc("a.txt"), 20000);
  subject_reads(doc("a.txt"));
  subject_writes(doc("out.bin"), rng.bytes(20000));
  EXPECT_EQ(engine->process_report(pid).entropy_events, 0u);
  EXPECT_EQ(engine->score(pid), 0);
}

// --- file type change -------------------------------------------------------

TEST_F(EngineTest, TypeChangeFiresOnEncryptedOverwrite) {
  attach();
  put_prose(doc("report.txt"), 10000);
  subject_overwrites(doc("report.txt"), encrypted_copy(doc("report.txt")));
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
}

TEST_F(EngineTest, NoTypeChangeOnSameTypeRewrite) {
  attach();
  put_prose(doc("report.txt"), 10000);
  subject_overwrites(doc("report.txt"), to_bytes(synth_prose(rng, 10000)));
  EXPECT_EQ(engine->process_report(pid).type_change_events, 0u);
}

TEST_F(EngineTest, TypeChangeWorksOnSub512ByteFiles) {
  // Small files evade the similarity indicator but not this one.
  attach();
  put_prose(doc("tiny.txt"), 200);
  subject_overwrites(doc("tiny.txt"), rng.bytes(200));
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.type_change_events, 1u);
  EXPECT_EQ(report.similarity_drop_events, 0u);
}

TEST_F(EngineTest, TypeChangeDetectedThroughTruncatingRewrite) {
  // kTruncate destroys the old content at open; the baseline must have
  // been captured before that.
  attach();
  put_prose(doc("a.txt"), 8000);
  auto h = fs.open(pid, doc("a.txt"), vfs::kWrite | vfs::kTruncate);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(8000)).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  EXPECT_EQ(engine->process_report(pid).type_change_events, 1u);
}

TEST_F(EngineTest, NewFileCreationIsNotATypeChange) {
  attach();
  subject_writes(doc("brand_new.bin"), rng.bytes(5000));
  EXPECT_EQ(engine->process_report(pid).type_change_events, 0u);
}

TEST_F(EngineTest, TypeChangeDisabledByAblationFlag) {
  config.enable_type_change = false;
  attach();
  put_prose(doc("a.txt"), 10000);
  subject_overwrites(doc("a.txt"), encrypted_copy(doc("a.txt")));
  EXPECT_EQ(engine->process_report(pid).type_change_events, 0u);
}

// --- similarity --------------------------------------------------------------

TEST_F(EngineTest, SimilarityDropFiresOnEncryption) {
  attach();
  put_prose(doc("a.txt"), 30000);
  subject_overwrites(doc("a.txt"), encrypted_copy(doc("a.txt")));
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 1u);
}

TEST_F(EngineTest, SimilarityKeptOnIncrementalEdit) {
  attach();
  put_prose(doc("a.txt"), 30000);
  Bytes edited = *fs.read_unfiltered(doc("a.txt"));
  // Change 10% in the middle, keep the rest.
  const Bytes patch = to_bytes(synth_prose(rng, 3000));
  std::copy(patch.begin(), patch.end(), edited.begin() + 10000);
  subject_overwrites(doc("a.txt"), ByteView(edited));
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 0u);
}

TEST_F(EngineTest, SimilarityUnavailableForSmallFiles) {
  attach();
  put_prose(doc("small.txt"), 300);
  subject_overwrites(doc("small.txt"), rng.bytes(300));
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 0u);
}

TEST_F(EngineTest, BaselineAdvancesAcrossSaves) {
  // Save 1 (high overlap), save 2 (high overlap vs save 1): each compare
  // is against the previous version, not the original.
  attach();
  put_prose(doc("a.txt"), 30000);
  Bytes v2 = *fs.read_unfiltered(doc("a.txt"));
  append(v2, to_bytes(synth_prose(rng, 3000)));
  subject_overwrites(doc("a.txt"), ByteView(v2));
  Bytes v3 = v2;
  append(v3, to_bytes(synth_prose(rng, 3000)));
  subject_overwrites(doc("a.txt"), ByteView(v3));
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 0u);
  // Now encrypt: compared against v3, not the original.
  subject_overwrites(doc("a.txt"),
                     crypto::chacha20_encrypt(rng.bytes(32), rng.bytes(12), ByteView(v3)));
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 1u);
}

TEST_F(EngineTest, SimilarityDisabledByAblationFlag) {
  config.enable_similarity = false;
  attach();
  put_prose(doc("a.txt"), 30000);
  subject_overwrites(doc("a.txt"), encrypted_copy(doc("a.txt")));
  EXPECT_EQ(engine->process_report(pid).similarity_drop_events, 0u);
}

// --- deletion -----------------------------------------------------------------

TEST_F(EngineTest, DeletionScoresPerRemove) {
  attach();
  for (int i = 0; i < 4; ++i) put_prose(doc("f" + std::to_string(i)), 1000);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fs.remove(pid, doc("f" + std::to_string(i))).is_ok());
  }
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.deletion_events, 4u);
  EXPECT_EQ(report.score, 4 * config.points_deletion);
}

TEST_F(EngineTest, DeletionOutsideRootIgnored) {
  attach();
  ASSERT_TRUE(fs.put_file_raw("tmp/x", to_bytes("x")).is_ok());
  ASSERT_TRUE(fs.remove(pid, "tmp/x").is_ok());
  EXPECT_EQ(engine->process_report(pid).deletion_events, 0u);
}

TEST_F(EngineTest, FailedDeleteDoesNotScore) {
  attach();
  ASSERT_TRUE(fs.put_file_raw(doc("locked"), to_bytes("x"), /*read_only=*/true).is_ok());
  EXPECT_EQ(fs.remove(pid, doc("locked")).code(), Errc::read_only);
  EXPECT_EQ(engine->process_report(pid).deletion_events, 0u);
}

TEST_F(EngineTest, DeletionDisabledByAblationFlag) {
  config.enable_deletion = false;
  attach();
  put_prose(doc("f"), 1000);
  ASSERT_TRUE(fs.remove(pid, doc("f")).is_ok());
  EXPECT_EQ(engine->score(pid), 0);
}

// --- funneling ---------------------------------------------------------------

TEST_F(EngineTest, FunnelingFiresOnManyReadTypesOneWriteType) {
  attach();
  // Six distinct read types, one write type.
  put_prose(doc("a.txt"), 2000);
  ASSERT_TRUE(fs.put_file_raw(doc("b.pdf"), to_bytes("%PDF-1.5 body")).is_ok());
  ASSERT_TRUE(fs.put_file_raw(doc("c.html"),
                              to_bytes("<!DOCTYPE html><html></html>")).is_ok());
  ASSERT_TRUE(fs.put_file_raw(doc("d.xml"), to_bytes("<?xml version=\"1.0\"?><r/>")).is_ok());
  Bytes jpeg = {0xff, 0xd8, 0xff, 0xe0};
  jpeg.resize(600, 0x11);
  ASSERT_TRUE(fs.put_file_raw(doc("e.jpg"), std::move(jpeg)).is_ok());
  ASSERT_TRUE(fs.put_file_raw(doc("f.rtf"), to_bytes("{\\rtf1 body}")).is_ok());

  subject_writes(doc("archive.bin"), rng.bytes(2000));  // one write type
  for (const char* name : {"a.txt", "b.pdf", "c.html", "d.xml", "e.jpg", "f.rtf"}) {
    subject_reads(doc(name));
  }
  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.funneling_events, 1u);
}

TEST_F(EngineTest, FunnelingNeedsAtLeastOneWrite) {
  // A pure scanner (anti-virus) reads everything and writes nothing: the
  // funnel never forms.
  attach();
  for (int i = 0; i < 6; ++i) put_prose(doc("t" + std::to_string(i) + ".txt"), 2000);
  ASSERT_TRUE(fs.put_file_raw(doc("b.pdf"), to_bytes("%PDF-1.5 body")).is_ok());
  subject_reads(doc("b.pdf"));
  for (int i = 0; i < 6; ++i) subject_reads(doc("t" + std::to_string(i) + ".txt"));
  EXPECT_EQ(engine->process_report(pid).funneling_events, 0u);
}

TEST_F(EngineTest, FunnelingSilentForFewReadTypes) {
  attach();
  put_prose(doc("a.txt"), 2000);
  subject_reads(doc("a.txt"));
  subject_writes(doc("out.bin"), rng.bytes(2000));
  EXPECT_EQ(engine->process_report(pid).funneling_events, 0u);
}

TEST_F(EngineTest, FunnelingFiresAtMostOncePerProcess) {
  attach();
  // Trip it, then keep reading more types: still one event.
  ASSERT_TRUE(fs.put_file_raw(doc("b.pdf"), to_bytes("%PDF-1.5 body")).is_ok());
  ASSERT_TRUE(fs.put_file_raw(doc("c.html"),
                              to_bytes("<!DOCTYPE html><html></html>")).is_ok());
  ASSERT_TRUE(fs.put_file_raw(doc("d.xml"), to_bytes("<?xml version=\"1.0\"?><r/>")).is_ok());
  ASSERT_TRUE(fs.put_file_raw(doc("f.rtf"), to_bytes("{\\rtf1 body}")).is_ok());
  put_prose(doc("a.txt"), 2000);
  subject_writes(doc("out.bin"), rng.bytes(2000));
  for (const char* name : {"a.txt", "b.pdf", "c.html", "d.xml", "f.rtf"}) {
    subject_reads(doc(name));
  }
  Bytes gif = to_bytes("GIF89a");
  gif.resize(400, 3);
  ASSERT_TRUE(fs.put_file_raw(doc("g.gif"), std::move(gif)).is_ok());
  subject_reads(doc("g.gif"));
  EXPECT_EQ(engine->process_report(pid).funneling_events, 1u);
}

// --- union indication -------------------------------------------------------

TEST_F(EngineTest, UnionRequiresAllThreePrimaries) {
  attach();
  put_prose(doc("a.txt"), 20000);
  // type + similarity only: overwrite with same-entropy garbage... use
  // encrypted overwrite but no prior read -> no entropy indicator.
  subject_overwrites(doc("a.txt"), encrypted_copy(doc("a.txt")));
  ProcessReport report = engine->process_report(pid);
  // The in-place overwrite includes a read via the same handle? No — the
  // subject never read, so entropy can't have fired.
  EXPECT_EQ(report.entropy_events, 0u);
  EXPECT_GE(report.type_change_events, 1u);
  EXPECT_GE(report.similarity_drop_events, 1u);
  EXPECT_FALSE(report.union_triggered);
}

TEST_F(EngineTest, UnionBonusAndThresholdDrop) {
  config.score_threshold = 100000;  // keep suspension out of the picture
  config.union_threshold = 99999;
  attach();
  put_prose(doc("a.txt"), 20000);
  put_prose(doc("b.txt"), 20000);
  subject_reads(doc("a.txt"));
  subject_overwrites(doc("b.txt"), encrypted_copy(doc("b.txt")));
  const ProcessReport report = engine->process_report(pid);
  EXPECT_TRUE(report.union_triggered);
  EXPECT_GE(report.union_count, 1u);
  EXPECT_EQ(report.threshold, 99999);
  // Score includes the union bonus.
  EXPECT_GE(report.score, config.union_bonus);
}

TEST_F(EngineTest, UnionDisabledByAblationFlag) {
  config.enable_union = false;
  attach();
  put_prose(doc("a.txt"), 20000);
  put_prose(doc("b.txt"), 20000);
  subject_reads(doc("a.txt"));
  subject_overwrites(doc("b.txt"), encrypted_copy(doc("b.txt")));
  const ProcessReport report = engine->process_report(pid);
  EXPECT_FALSE(report.union_triggered);
  EXPECT_EQ(report.threshold, config.score_threshold);
}

TEST_F(EngineTest, UnionBonusAppliedOnlyOnce) {
  attach();
  put_prose(doc("a.txt"), 20000);
  for (int i = 0; i < 4; ++i) put_prose(doc("v" + std::to_string(i) + ".txt"), 20000);
  subject_reads(doc("a.txt"));
  int union_events = 0;
  for (int i = 0; i < 4; ++i) {
    const std::string path = doc("v" + std::to_string(i) + ".txt");
    subject_overwrites(path, encrypted_copy(path));
  }
  for (const ScoreEvent& ev : engine->process_report(pid).timeline) {
    if (ev.indicator == Indicator::union_indication) ++union_events;
  }
  EXPECT_EQ(union_events, 1);
}

// --- scope: the protected root ------------------------------------------------

TEST_F(EngineTest, ActivityOutsideRootIsInvisible) {
  attach();
  ASSERT_TRUE(fs.put_file_raw("elsewhere/data.txt",
                              to_bytes(synth_prose(rng, 20000))).is_ok());
  subject_reads("elsewhere/data.txt");
  subject_writes("elsewhere/out.bin", rng.bytes(50000));
  auto h = fs.open(pid, "elsewhere/data.txt", vfs::kRead | vfs::kWrite);
  ASSERT_TRUE(h.is_ok());
  ASSERT_TRUE(fs.write(pid, h.value(), rng.bytes(20000)).is_ok());
  ASSERT_TRUE(fs.close(pid, h.value()).is_ok());
  ASSERT_TRUE(fs.remove(pid, "elsewhere/out.bin").is_ok());

  const ProcessReport report = engine->process_report(pid);
  EXPECT_EQ(report.score, 0);
  EXPECT_EQ(engine->observed_ops(), 0u);
  EXPECT_TRUE(report.read_extensions.empty());
}

TEST_F(EngineTest, ExtensionBookkeepingForFigure5) {
  attach();
  put_prose(doc("report.txt"), 2000);
  ASSERT_TRUE(fs.put_file_raw(doc("paper.pdf"), to_bytes("%PDF-1.5 body")).is_ok());
  subject_reads(doc("report.txt"));
  subject_reads(doc("paper.pdf"));
  subject_writes(doc("out.enc"), rng.bytes(1000));
  const ProcessReport report = engine->process_report(pid);
  EXPECT_TRUE(report.read_extensions.contains("txt"));
  EXPECT_TRUE(report.read_extensions.contains("pdf"));
  EXPECT_TRUE(report.write_extensions.contains("enc"));
}

TEST_F(EngineTest, TimelineRecordsIndicatorsInOrder) {
  attach();
  put_prose(doc("a.txt"), 20000);
  subject_reads(doc("a.txt"));
  subject_writes(doc("x.bin"), rng.bytes(20000));  // entropy
  ASSERT_TRUE(fs.remove(pid, doc("a.txt")).is_ok());  // deletion
  const ProcessReport report = engine->process_report(pid);
  ASSERT_GE(report.timeline.size(), 2u);
  EXPECT_EQ(report.timeline[0].indicator, Indicator::entropy_delta);
  EXPECT_EQ(report.timeline.back().indicator, Indicator::deletion);
  EXPECT_LE(report.timeline[0].op_seq, report.timeline.back().op_seq);
}

TEST_F(EngineTest, TimelineDisabledWhenNotRecorded) {
  config.record_timeline = false;
  attach();
  put_prose(doc("a.txt"), 1000);
  ASSERT_TRUE(fs.remove(pid, doc("a.txt")).is_ok());
  EXPECT_GT(engine->score(pid), 0);
  EXPECT_TRUE(engine->process_report(pid).timeline.empty());
}

TEST_F(EngineTest, IndicatorNamesAreStable) {
  EXPECT_EQ(indicator_name(Indicator::entropy_delta), "entropy_delta");
  EXPECT_EQ(indicator_name(Indicator::union_indication), "union");
}

}  // namespace
}  // namespace cryptodrop::core
