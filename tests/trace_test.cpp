// Tests for trace record/replay, including the §V-F demonstration that a
// metadata-only activity log cannot drive CryptoDrop's measurements.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/text.hpp"
#include "core/engine.hpp"
#include "harness/experiment.hpp"
#include "vfs/trace.hpp"

namespace cryptodrop::vfs {
namespace {

TEST(TraceFormat, RoundTripsAllOps) {
  FileSystem fs;
  TraceRecorder recorder(/*capture_content=*/true);
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("traced");
  ASSERT_TRUE(fs.mkdir(pid, "dir").is_ok());
  ASSERT_TRUE(fs.write_file(pid, "dir/a.txt", to_bytes("hello world")).is_ok());
  ASSERT_TRUE(fs.read_file(pid, "dir/a.txt").is_ok());
  ASSERT_TRUE(fs.rename(pid, "dir/a.txt", "dir/b.txt").is_ok());
  ASSERT_TRUE(fs.remove(pid, "dir/b.txt").is_ok());

  const std::string text = serialize_trace(recorder.entries());
  const auto parsed = parse_trace(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), recorder.entries().size());
  for (std::size_t i = 0; i < parsed->size(); ++i) {
    const TraceEntry& a = recorder.entries()[i];
    const TraceEntry& b = (*parsed)[i];
    EXPECT_EQ(a.op, b.op) << i;
    EXPECT_EQ(a.pid, b.pid) << i;
    EXPECT_EQ(a.path, b.path) << i;
    EXPECT_EQ(a.dest_path, b.dest_path) << i;
    EXPECT_EQ(a.offset, b.offset) << i;
    EXPECT_EQ(a.length, b.length) << i;
    EXPECT_EQ(a.data, b.data) << i;
    EXPECT_EQ(a.timestamp, b.timestamp) << i;
  }
  fs.detach_filter(&recorder);
}

TEST(TraceFormat, EscapesAwkwardPaths) {
  FileSystem fs;
  TraceRecorder recorder(true);
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.write_file(pid, "dir/we|ird\\name.txt", to_bytes("x")).is_ok());
  const auto parsed = parse_trace(serialize_trace(recorder.entries()));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ((*parsed)[0].path, "dir/we|ird\\name.txt");
  fs.detach_filter(&recorder);
}

TEST(TraceFormat, RejectsMalformedInput) {
  EXPECT_FALSE(parse_trace("write|not-enough-fields").has_value());
  EXPECT_FALSE(parse_trace("nosuchop|1|0|p||0|0|0|").has_value());
  EXPECT_FALSE(parse_trace("write|xx|0|p||0|0|0|").has_value());
  EXPECT_FALSE(parse_trace("write|1|0|p||0|0|0|zz").has_value());
  // Comments and blank lines are fine.
  const auto ok = parse_trace("# comment\n\n");
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(ok->empty());
}

TEST(TraceFormat, MetadataOnlyOmitsPayload) {
  FileSystem fs;
  TraceRecorder recorder(/*capture_content=*/false);
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.write_file(pid, "a.bin", to_bytes("secret payload")).is_ok());
  for (const TraceEntry& entry : recorder.entries()) {
    EXPECT_TRUE(entry.data.empty());
    if (entry.op == OpType::write) EXPECT_EQ(entry.length, 14u);
  }
  fs.detach_filter(&recorder);
}

TEST(TraceReplay, ContentTraceReproducesTheVolume) {
  FileSystem fs;
  TraceRecorder recorder(true);
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("p");
  Rng rng(1);
  ASSERT_TRUE(fs.write_file(pid, "docs/report.txt",
                            to_bytes(synth_prose(rng, 3000))).is_ok());
  ASSERT_TRUE(fs.write_file(pid, "docs/data.bin", rng.bytes(4096)).is_ok());
  ASSERT_TRUE(fs.rename(pid, "docs/report.txt", "docs/final.txt").is_ok());
  fs.detach_filter(&recorder);

  FileSystem replayed;
  const ReplayResult result = replay_trace(replayed, recorder.entries());
  EXPECT_EQ(result.failed, 0u);
  ASSERT_TRUE(replayed.exists("docs/final.txt"));
  ASSERT_TRUE(replayed.exists("docs/data.bin"));
  EXPECT_EQ(*replayed.read_unfiltered("docs/final.txt"),
            *fs.read_unfiltered("docs/final.txt"));
  EXPECT_EQ(*replayed.read_unfiltered("docs/data.bin"),
            *fs.read_unfiltered("docs/data.bin"));
}

TEST(TraceReplay, PreservesVirtualPacing) {
  FileSystem fs;
  TraceRecorder recorder(true);
  fs.attach_filter(&recorder);
  const ProcessId pid = fs.register_process("p");
  ASSERT_TRUE(fs.write_file(pid, "a", to_bytes("1")).is_ok());
  fs.advance_time(5'000'000);
  ASSERT_TRUE(fs.write_file(pid, "b", to_bytes("2")).is_ok());
  fs.detach_filter(&recorder);

  FileSystem replayed;
  (void)replay_trace(replayed, recorder.entries());
  EXPECT_GE(replayed.now_micros(), 5'000'000u);
}

// --- the §V-F demonstration ---------------------------------------------

class TraceAnalysisTest : public ::testing::Test {
 protected:
  static harness::Environment* env;

  static void SetUpTestSuite() {
    corpus::CorpusSpec spec;
    spec.total_files = 300;
    spec.total_dirs = 30;
    spec.compute_hashes = false;
    env = new harness::Environment(harness::make_environment(spec, 909));
  }
  static void TearDownTestSuite() {
    delete env;
    env = nullptr;
  }

  /// Records a ransomware run (no engine attached — passive observation).
  std::vector<TraceEntry> record_attack(bool capture_content) {
    FileSystem fs = env->base_fs.clone();
    TraceRecorder recorder(capture_content);
    fs.attach_filter(&recorder);
    const ProcessId pid = fs.register_process("malware");
    sim::RansomwareProfile profile =
        sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
    profile.max_files = 25;
    sim::RansomwareSample sample(profile, 42);
    (void)sample.run(fs, pid, env->corpus.root);
    fs.detach_filter(&recorder);
    return recorder.entries();
  }

  /// Replays a trace into a fresh clone with the engine attached.
  core::ProcessReport analyze_replay(const std::vector<TraceEntry>& trace) {
    FileSystem fs = env->base_fs.clone();
    core::ScoringConfig config;
    config.score_threshold = 1000000;  // observe everything
    config.union_threshold = 1000000;
    core::AnalysisEngine engine(config);
    fs.attach_filter(&engine);
    (void)replay_trace(fs, trace);
    // All replayer pids map to one family-less process each; aggregate
    // the report of the busiest one.
    core::ProcessReport best;
    for (const core::ProcessReport& report : engine.snapshot().processes) {
      if (report.score >= best.score) best = report;
    }
    fs.detach_filter(&engine);
    return best;
  }
};

harness::Environment* TraceAnalysisTest::env = nullptr;

TEST_F(TraceAnalysisTest, ContentCarryingReplayReproducesDetection) {
  const auto report = analyze_replay(record_attack(/*capture_content=*/true));
  EXPECT_GT(report.type_change_events, 0u);
  EXPECT_GT(report.similarity_drop_events, 0u);
  EXPECT_GT(report.entropy_events, 0u);
  EXPECT_TRUE(report.union_triggered);
}

TEST_F(TraceAnalysisTest, MetadataOnlyReplayLosesTheIndicators) {
  // The paper's point: a content-free activity log (what conventional
  // dynamic analysis keeps) cannot reproduce CryptoDrop's measurements —
  // the replay writes zeros, so entropy collapses and similarity becomes
  // unavailable, and union indication never forms.
  const auto full = analyze_replay(record_attack(true));
  const auto metadata_only = analyze_replay(record_attack(false));
  EXPECT_EQ(metadata_only.entropy_events, 0u);
  EXPECT_EQ(metadata_only.similarity_drop_events, 0u);
  EXPECT_FALSE(metadata_only.union_triggered);
  EXPECT_LT(metadata_only.score, full.score);
}

}  // namespace
}  // namespace cryptodrop::vfs
