// Golden-parity suite for the vectorized hot-path kernels (DESIGN.md
// §16): every accelerated kernel must be bit-identical to its scalar
// `_reference` counterpart on randomized buffers covering every length
// mod 64 (the feature-window / SIMD-lane width), and the composites
// built on them — SimilarityDigest::compute, the SHA-256 block
// compressor, and all four entropy backends — must agree exactly with
// their straight-line reference forms, single-threaded and from 16
// concurrent threads (the per-thread scratch pools must not leak state
// between operations).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include "common/buffer_pool.hpp"
#include "common/kernels.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"
#include "common/text.hpp"
#include "crypto/sha256.hpp"
#include "entropy/backend.hpp"
#include "entropy/entropy.hpp"
#include "simhash/similarity.hpp"

namespace cryptodrop {
namespace {

/// Lengths hitting every residue mod 64 at least twice, plus sizes large
/// enough to exercise the unrolled main loops and tail handling.
std::vector<std::size_t> parity_lengths() {
  std::vector<std::size_t> lengths;
  for (std::size_t n = 0; n < 128; ++n) lengths.push_back(n);
  for (std::size_t r = 0; r < 64; ++r) lengths.push_back(4096 + r);
  lengths.push_back(65536);
  lengths.push_back(65536 + 17);
  return lengths;
}

/// Mixed-structure fixture: prose head, constant run, keystream-ish tail
/// — hits the histogram sub-table merge, the distinct-byte early exit,
/// and the rolling-hash trigger density in one buffer.
Bytes mixed_fixture(Rng& rng, std::size_t n) {
  Bytes out = to_bytes(synth_prose(rng, n / 2 + 1));
  out.resize(n / 2);
  out.insert(out.end(), n / 4, std::uint8_t{0x41});
  Bytes tail = rng.bytes(n - out.size());
  out.insert(out.end(), tail.begin(), tail.end());
  out.resize(n);
  return out;
}

TEST(KernelParity, ByteHistogramMatchesReference) {
  Rng rng(2016);
  for (std::size_t n : parity_lengths()) {
    const Bytes data = mixed_fixture(rng, n);
    std::uint64_t ref[256] = {};
    std::uint64_t fast[256] = {};
    kernels::byte_histogram_reference(data.data(), data.size(), ref);
    kernels::byte_histogram(data.data(), data.size(), fast);
    ASSERT_EQ(0, std::memcmp(ref, fast, sizeof(ref))) << "n=" << n;
  }
  // Accumulation semantics: both forms add into pre-loaded counts.
  std::uint64_t counts[256];
  for (std::size_t i = 0; i < 256; ++i) counts[i] = i * 3 + 1;
  const Bytes data = rng.bytes(1000);
  std::uint64_t expected[256];
  std::memcpy(expected, counts, sizeof(counts));
  kernels::byte_histogram_reference(data.data(), data.size(), expected);
  kernels::byte_histogram(data.data(), data.size(), counts);
  EXPECT_EQ(0, std::memcmp(expected, counts, sizeof(counts)));
}

TEST(KernelParity, Fnv1a64LanesMatchScalarChain) {
  Rng rng(2017);
  for (std::size_t n : parity_lengths()) {
    const Bytes buf = rng.bytes(n + 3 * 64 + 4);
    const std::uint8_t* p0 = buf.data();
    const std::uint8_t* p1 = buf.data() + 1;
    const std::uint8_t* p2 = buf.data() + 64;
    const std::uint8_t* p3 = buf.data() + 67;
    std::uint64_t lanes[4];
    kernels::fnv1a64_x4(p0, p1, p2, p3, n, lanes);
    EXPECT_EQ(lanes[0], kernels::fnv1a64(p0, n)) << "n=" << n;
    EXPECT_EQ(lanes[1], kernels::fnv1a64(p1, n)) << "n=" << n;
    EXPECT_EQ(lanes[2], kernels::fnv1a64(p2, n)) << "n=" << n;
    EXPECT_EQ(lanes[3], kernels::fnv1a64(p3, n)) << "n=" << n;
  }
}

TEST(KernelParity, HasMinDistinctMatchesExactCount) {
  Rng rng(2018);
  std::vector<Bytes> fixtures;
  fixtures.push_back(Bytes());
  fixtures.push_back(Bytes(64, std::uint8_t{7}));        // 1 distinct
  fixtures.push_back(to_bytes("ababababababab"));        // 2 distinct
  for (int i = 0; i < 32; ++i) {
    fixtures.push_back(rng.bytes(rng.uniform(1, 192)));
  }
  // Low-cardinality adversaries: values drawn from a tiny alphabet so
  // the exact count sits right at typical thresholds.
  for (int i = 0; i < 32; ++i) {
    Bytes b(64);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(0, 8));
    fixtures.push_back(std::move(b));
  }
  for (const Bytes& b : fixtures) {
    const int exact = kernels::distinct_count_reference(b.data(), b.size());
    for (int threshold = 0; threshold <= 12; ++threshold) {
      EXPECT_EQ(kernels::has_min_distinct(b.data(), b.size(), threshold),
                exact >= threshold)
          << "n=" << b.size() << " threshold=" << threshold;
    }
  }
}

TEST(KernelParity, AndPopcountMatchesReference) {
  Rng rng(2019);
  for (std::size_t words = 0; words <= 64; ++words) {
    std::vector<std::uint64_t> a(words);
    std::vector<std::uint64_t> b(words);
    for (std::size_t i = 0; i < words; ++i) {
      a[i] = rng.next();
      b[i] = rng.chance(0.3) ? ~std::uint64_t{0} : rng.next();
    }
    EXPECT_EQ(kernels::and_popcount(a.data(), b.data(), words),
              kernels::and_popcount_reference(a.data(), b.data(), words))
        << "words=" << words;
  }
}

TEST(KernelParity, SerialLag1SumsMatchReference) {
  Rng rng(2020);
  for (std::size_t n : parity_lengths()) {
    const Bytes data = mixed_fixture(rng, n);
    std::uint64_t rb = 0, rb2 = 0, rp = 0;
    std::uint64_t fb = 0, fb2 = 0, fp = 0;
    kernels::serial_lag1_sums_reference(data.data(), data.size(), rb, rb2, rp);
    kernels::serial_lag1_sums(data.data(), data.size(), fb, fb2, fp);
    EXPECT_EQ(fb, rb) << "n=" << n;
    EXPECT_EQ(fb2, rb2) << "n=" << n;
    EXPECT_EQ(fp, rp) << "n=" << n;
  }
}

TEST(KernelParity, SimilarityDigestBatchedMatchesReference) {
  Rng rng(2021);
  // Sub-minimum, boundary, featureless, and every residue mod 64 above
  // the minimum — compute() and compute_reference() must agree on both
  // the nullopt decision and every bit of the digest.
  std::vector<Bytes> fixtures;
  fixtures.push_back(Bytes());
  fixtures.push_back(rng.bytes(simhash::kMinInputSize - 1));
  fixtures.push_back(rng.bytes(simhash::kMinInputSize));
  fixtures.push_back(Bytes(4096, std::uint8_t{0}));  // featureless
  for (std::size_t r = 0; r < 64; ++r) {
    fixtures.push_back(mixed_fixture(rng, 512 + r));
    fixtures.push_back(rng.bytes(3000 + r));
  }
  fixtures.push_back(to_bytes(synth_prose(rng, 20000)));
  fixtures.push_back(rng.bytes(65536 + 33));
  for (const Bytes& data : fixtures) {
    const auto fast = simhash::SimilarityDigest::compute(ByteView(data));
    const auto ref = simhash::SimilarityDigest::compute_reference(ByteView(data));
    ASSERT_EQ(fast.has_value(), ref.has_value()) << "n=" << data.size();
    if (fast.has_value()) {
      EXPECT_TRUE(*fast == *ref) << "n=" << data.size();
      EXPECT_EQ(fast->compare(*ref), 100) << "n=" << data.size();
    }
  }
}

TEST(KernelParity, Sha256HardwareMatchesForcedScalar) {
  SCOPED_TRACE(crypto::sha256_backend_name());
  Rng rng(2022);
  // "abc" pin (FIPS 180-4 appendix B.1) guards against both paths being
  // wrong the same way.
  EXPECT_EQ(crypto::sha256_hex(ByteView(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  std::vector<std::size_t> lengths = parity_lengths();
  lengths.push_back(55);   // padding fits in one block
  lengths.push_back(56);   // padding forces a second block
  for (std::size_t n : lengths) {
    const Bytes data = mixed_fixture(rng, n);
    const crypto::Sha256Digest active = crypto::sha256(ByteView(data));
    const bool prev = crypto::sha256_force_scalar(true);
    const crypto::Sha256Digest scalar = crypto::sha256(ByteView(data));
    crypto::sha256_force_scalar(prev);
    EXPECT_EQ(active, scalar) << "n=" << n;
    // Streamed updates cross block boundaries at awkward offsets.
    crypto::Sha256 chunked;
    for (std::size_t off = 0; off < n; off += 37) {
      chunked.update(ByteView(data).subspan(off, std::min<std::size_t>(37, n - off)));
    }
    EXPECT_EQ(chunked.finish(), active) << "n=" << n;
  }
}

// --- entropy backends vs reference-kernel formulas ----------------------
// Each reference below recomputes the backend's documented statistic
// from the *scalar reference* kernels with the identical floating-point
// expression order, so any accelerated-kernel drift shows up as a score
// mismatch.

double ref_shannon(const Bytes& data) {
  if (data.empty()) return 0.0;
  std::uint64_t counts[256] = {};
  kernels::byte_histogram_reference(data.data(), data.size(), counts);
  const double total = static_cast<double>(data.size());
  double e = 0.0;
  for (std::uint64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / total;
    e -= p * std::log2(p);
  }
  return e;
}

double ref_chi_square(const Bytes& data) {
  if (data.empty()) return 0.0;
  std::uint64_t counts[256] = {};
  kernels::byte_histogram_reference(data.data(), data.size(), counts);
  const double expected = static_cast<double>(data.size()) / 256.0;
  double x = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    const double d = static_cast<double>(counts[i]) - expected;
    x += d * d / expected;
  }
  return 8.0 / (1.0 + x / static_cast<double>(data.size()));
}

double ref_serial_correlation(const Bytes& data) {
  if (data.empty()) return 0.0;
  std::uint64_t sum_b = 0, sum_b2 = 0, sum_prod = 0;
  kernels::serial_lag1_sums_reference(data.data(), data.size(), sum_b, sum_b2,
                                      sum_prod);
  const std::uint64_t wrap =
      static_cast<std::uint64_t>(data.back()) *
      static_cast<std::uint64_t>(data.front());
  const double dn = static_cast<double>(data.size());
  const double db = static_cast<double>(sum_b);
  const double den = dn * static_cast<double>(sum_b2) - db * db;
  double scc = 1.0;
  if (den != 0.0) scc = (dn * static_cast<double>(sum_prod + wrap) - db * db) / den;
  const double structured = std::min(1.0, 4.0 * std::abs(scc));
  return 8.0 * (1.0 - structured);
}

double ref_daa_window(const std::uint8_t* p, std::size_t n) {
  if (n == 0) return 0.0;
  std::uint64_t counts[256] = {};
  kernels::byte_histogram_reference(p, n, counts);
  const double dn = static_cast<double>(n);
  double tv = 0.0;
  for (std::size_t i = 0; i < 256; ++i) {
    tv += std::abs(static_cast<double>(counts[i]) / dn - 1.0 / 256.0);
  }
  tv *= 0.5;
  return 8.0 * (1.0 - tv);
}

double ref_daa(const Bytes& data, std::size_t window) {
  if (data.empty()) return 0.0;
  const std::size_t w = std::min(window, data.size());
  const double head = ref_daa_window(data.data(), w);
  const double tail = ref_daa_window(data.data() + (data.size() - w), w);
  return std::min(head, tail);
}

double reference_score(entropy::BackendKind kind, const Bytes& data) {
  switch (kind) {
    case entropy::BackendKind::shannon: return ref_shannon(data);
    case entropy::BackendKind::chi_square: return ref_chi_square(data);
    case entropy::BackendKind::serial_correlation:
      return ref_serial_correlation(data);
    case entropy::BackendKind::daa:
      return ref_daa(data, entropy::BackendOptions{}.daa_window_bytes);
  }
  return -1.0;
}

TEST(KernelParity, EntropyBackendsMatchReferenceKernels) {
  Rng rng(2023);
  std::vector<Bytes> fixtures;
  for (std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{63}, std::size_t{64},
        std::size_t{65}, std::size_t{600}, std::size_t{2048},
        std::size_t{2049}, std::size_t{4095}, std::size_t{4096},
        std::size_t{8192}, std::size_t{65536 + 11}}) {
    fixtures.push_back(mixed_fixture(rng, n));
    fixtures.push_back(rng.bytes(n));
  }
  for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
    const auto backend = entropy::make_backend(kind);
    for (const Bytes& data : fixtures) {
      EXPECT_EQ(backend->score(ByteView(data)), reference_score(kind, data))
          << backend->name() << " n=" << data.size();
    }
  }
}

TEST(KernelParity, ConcurrentScoringMatchesSingleThread) {
  // 16 threads hammer the same fixtures through digests + backends; the
  // thread_local scratch pools must never bleed state between ops, so
  // every thread reproduces the single-threaded answers exactly.
  Rng rng(2024);
  std::vector<Bytes> fixtures;
  for (int i = 0; i < 8; ++i) {
    fixtures.push_back(mixed_fixture(rng, 1500 + 64 * i + i));
  }
  struct Expected {
    std::optional<simhash::SimilarityDigest> digest;
    double scores[entropy::kBackendCount];
    crypto::Sha256Digest sha;
  };
  std::vector<Expected> expected;
  for (const Bytes& data : fixtures) {
    Expected e;
    e.digest = simhash::SimilarityDigest::compute(ByteView(data));
    for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
      e.scores[static_cast<std::size_t>(kind)] =
          entropy::make_backend(kind)->score(ByteView(data));
    }
    e.sha = crypto::sha256(ByteView(data));
    expected.push_back(std::move(e));
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        for (std::size_t i = 0; i < fixtures.size(); ++i) {
          const ByteView data{fixtures[i]};
          const auto digest = simhash::SimilarityDigest::compute(data);
          if (digest.has_value() != expected[i].digest.has_value() ||
              (digest.has_value() && !(*digest == *expected[i].digest))) {
            mismatches.fetch_add(1);
          }
          for (entropy::BackendKind kind : entropy::all_backend_kinds()) {
            if (entropy::make_backend(kind)->score(data) !=
                expected[i].scores[static_cast<std::size_t>(kind)]) {
              mismatches.fetch_add(1);
            }
          }
          if (crypto::sha256(data) != expected[i].sha) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  // The pools were exercised: acquisitions happened and some were hits.
  const BufferPoolStats stats = buffer_pool_stats();
  EXPECT_GT(stats.acquires, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(KernelParity, SimdBackendNameIsKnown) {
  const std::string_view name = simd_backend_name();
  EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "neon" ||
              name == "swar")
      << name;
  const std::string_view sha = crypto::sha256_backend_name();
  EXPECT_TRUE(sha == "sha_ni" || sha == "scalar") << sha;
}

}  // namespace
}  // namespace cryptodrop
