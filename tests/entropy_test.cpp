// Tests for the Shannon entropy indicator and the paper's weighted mean.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "entropy/entropy.hpp"

namespace cryptodrop::entropy {
namespace {

TEST(Shannon, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(shannon(ByteView()), 0.0);
}

TEST(Shannon, SingleByteValueIsZero) {
  const Bytes b(1000, 0x41);
  EXPECT_DOUBLE_EQ(shannon(ByteView(b)), 0.0);
}

TEST(Shannon, TwoEqualValuesIsOne) {
  Bytes b;
  for (int i = 0; i < 500; ++i) {
    b.push_back(0);
    b.push_back(1);
  }
  EXPECT_NEAR(shannon(ByteView(b)), 1.0, 1e-12);
}

TEST(Shannon, AllByteValuesEquallyIsEight) {
  Bytes b;
  for (int rep = 0; rep < 4; ++rep) {
    for (int v = 0; v < 256; ++v) b.push_back(static_cast<std::uint8_t>(v));
  }
  EXPECT_NEAR(shannon(ByteView(b)), 8.0, 1e-12);
}

TEST(Shannon, RandomDataNearEight) {
  Rng rng(1);
  EXPECT_GT(shannon(ByteView(rng.bytes(100000))), 7.99);
}

TEST(Shannon, EnglishTextMidRange) {
  Bytes b;
  for (int i = 0; i < 100; ++i) {
    append(b, std::string_view("the quick brown fox jumps over the lazy dog "));
  }
  const double e = shannon(ByteView(b));
  EXPECT_GT(e, 3.5);
  EXPECT_LT(e, 5.0);
}

TEST(Shannon, BoundedByLog2OfLength) {
  // n distinct bytes can't exceed log2(n) bits/byte.
  Bytes b = {0, 1, 2, 3};
  EXPECT_LE(shannon(ByteView(b)), 2.0 + 1e-12);
}

TEST(Shannon, AlwaysInRange) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes b = rng.bytes(rng.uniform(1, 5000));
    const double e = shannon(ByteView(b));
    EXPECT_GE(e, 0.0);
    EXPECT_LE(e, 8.0);
  }
}

TEST(Histogram, MatchesOneShotAcrossChunks) {
  Rng rng(3);
  const Bytes data = rng.bytes(10000);
  Histogram hist;
  for (std::size_t off = 0; off < data.size(); off += 123) {
    const std::size_t n = std::min<std::size_t>(123, data.size() - off);
    hist.add(ByteView(data).subspan(off, n));
  }
  EXPECT_NEAR(hist.entropy(), shannon(ByteView(data)), 1e-12);
  EXPECT_EQ(hist.total(), data.size());
}

TEST(Histogram, EmptyIsZero) {
  Histogram hist;
  EXPECT_DOUBLE_EQ(hist.entropy(), 0.0);
  EXPECT_EQ(hist.total(), 0u);
}

// --- the paper's weighted mean (w = 0.125 * round(e) * b) ------------------

TEST(WeightedMean, EmptyIsZero) {
  WeightedEntropyMean m;
  EXPECT_TRUE(m.empty());
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(WeightedMean, SingleOperation) {
  WeightedEntropyMean m;
  m.add(6.0, 1000);
  EXPECT_DOUBLE_EQ(m.mean(), 6.0);
  EXPECT_EQ(m.operations(), 1u);
}

TEST(WeightedMean, ZeroEntropyOpsHaveZeroWeight) {
  // round(0.3) == 0: the op contributes nothing to the mean — the exact
  // property the paper wants for tiny low-entropy ransom-note writes.
  WeightedEntropyMean m;
  m.add(7.9, 100000);
  m.add(0.3, 100000);
  EXPECT_DOUBLE_EQ(m.mean(), 7.9);
}

TEST(WeightedMean, LargeHighEntropyOpDominates) {
  WeightedEntropyMean m;
  m.add(4.0, 100);     // small ransom note
  m.add(8.0, 100000);  // bulk ciphertext
  EXPECT_GT(m.mean(), 7.9);
}

TEST(WeightedMean, EqualWeightsAverage) {
  WeightedEntropyMean m;
  // Same rounded entropy and same size => equal weights.
  m.add(6.2, 1000);
  m.add(5.8, 1000);
  EXPECT_NEAR(m.mean(), 6.0, 1e-9);
}

TEST(WeightedMean, BoundedByInputRange) {
  Rng rng(4);
  WeightedEntropyMean m;
  double lo = 8.0, hi = 0.0;
  for (int i = 0; i < 100; ++i) {
    const double e = rng.uniform01() * 8.0;
    m.add(e, 1 + rng.uniform(0, 10000));
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  EXPECT_GE(m.mean() + 1e-9, 0.0);
  EXPECT_LE(m.mean(), hi + 1e-9);
}

TEST(WeightedMean, PaperWeightFormula) {
  // w = 0.125 * round(e) * b. Two ops: (e=8, b=100) and (e=4, b=400)
  // have weights 100 and 200 -> mean = (8*100 + 4*200)/300 = 5.333...
  WeightedEntropyMean m;
  m.add(8.0, 100);
  m.add(4.0, 400);
  EXPECT_NEAR(m.mean(), (8.0 * 100 + 4.0 * 200) / 300.0, 1e-9);
}

TEST(WeightedMean, CallerPlumbsPrecomputedScore) {
  // The mean takes the score the caller already computed for the
  // indicator pass (there is no ByteView overload, so the hot path can
  // never compute a backend twice for one operation).
  WeightedEntropyMean m;
  Bytes uniform;
  for (int v = 0; v < 256; ++v) uniform.push_back(static_cast<std::uint8_t>(v));
  m.add(shannon(ByteView(uniform)), uniform.size());
  EXPECT_NEAR(m.mean(), 8.0, 1e-9);
}

TEST(WeightedMean, RansomNoteScenario) {
  // The exact situation §IV-C.1 describes: many small low-entropy note
  // writes must not drag the mean below the suspicion threshold.
  WeightedEntropyMean writes;
  WeightedEntropyMean reads;
  for (int dir = 0; dir < 50; ++dir) {
    writes.add(4.3, 1500);   // ransom note per directory
    writes.add(8.0, 80000);  // encrypted file
    reads.add(7.9, 80000);   // original (already-compressed) file
  }
  EXPECT_GE(writes.mean() - reads.mean(), 0.05);
}

}  // namespace
}  // namespace cryptodrop::entropy
