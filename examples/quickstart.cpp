// Quickstart: the five-minute tour of the CryptoDrop library.
//
//  1. open a MonitorSession (fresh volume + attached analysis engine),
//  2. build a victim documents corpus on its in-memory filesystem,
//  3. unleash one simulated TeslaCrypt sample,
//  4. watch the engine suspend it, and count the files lost via an
//     atomic engine snapshot.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "core/session.hpp"
#include "corpus/builder.hpp"
#include "sim/ransomware/families.hpp"
#include "vfs/filesystem.hpp"

using namespace cryptodrop;

int main() {
  // --- 1. one monitored volume, RAII-style ------------------------------
  core::ScoringConfig config;  // defaults: threshold 200, union enabled
  core::MonitorSession session(config);
  session.engine().set_alert_callback([](const core::Alert& alert) {
    std::printf("\n*** CryptoDrop ALERT: process '%s' (pid %u) suspended\n"
                "    score %d reached threshold %d%s\n\n",
                alert.process_name.c_str(), alert.pid, alert.score,
                alert.threshold, alert.via_union ? " via UNION indication" : "");
  });

  // --- 2. a small victim corpus (400 files across 60 directories) ------
  // Corpus building uses the raw (unfiltered) API, so it does not score.
  corpus::CorpusSpec spec;
  spec.total_files = 400;
  spec.total_dirs = 60;
  Rng rng(/*seed=*/42);
  const corpus::Corpus corpus = corpus::build_corpus(session.fs(), spec, rng);
  std::printf("corpus: %zu files in %zu directories (%.1f MiB)\n",
              corpus.file_count(), session.fs().dir_count(),
              static_cast<double>(corpus.total_bytes()) / (1024.0 * 1024.0));

  // --- 3. run one TeslaCrypt sample ----------------------------------------
  const vfs::ProcessId pid = session.spawn("teslacrypt.exe");
  sim::RansomwareProfile profile =
      sim::family_profile("TeslaCrypt", sim::BehaviorClass::A);
  sim::RansomwareSample sample(profile, /*seed=*/7);
  const sim::SampleRun run = sample.run(session.fs(), pid, corpus.root);

  // --- 4. damage report -----------------------------------------------------
  const core::EngineSnapshot snap = session.snapshot();
  const core::ProcessReport report = snap.report_for(pid);
  const std::size_t lost = corpus::count_files_lost(session.fs(), corpus);
  std::printf("sample halted: %s\n",
              run.ran_to_completion ? "no (ran to completion!)" : "yes");
  std::printf("files lost before detection: %zu of %zu (%.2f%%)\n", lost,
              corpus.file_count(),
              100.0 * static_cast<double>(lost) /
                  static_cast<double>(corpus.file_count()));
  std::printf("final reputation score: %d (threshold %d) after %llu observed ops\n",
              report.score, report.threshold,
              static_cast<unsigned long long>(snap.observed_ops));
  std::printf("indicators: entropy=%llu type_change=%llu similarity=%llu "
              "deletion=%llu funneling=%llu union=%s\n",
              static_cast<unsigned long long>(report.entropy_events),
              static_cast<unsigned long long>(report.type_change_events),
              static_cast<unsigned long long>(report.similarity_drop_events),
              static_cast<unsigned long long>(report.deletion_events),
              static_cast<unsigned long long>(report.funneling_events),
              report.union_triggered ? "yes" : "no");
  return lost < corpus.file_count() ? 0 : 1;
}
