// Benign application gallery: runs all thirty benign workloads from the
// paper's false-positive study against the monitored corpus and prints
// each application's final reputation score. The only detection should
// be 7-zip — the paper's single (expected) false positive.
//
// Run: ./build/examples/benign_apps [corpus_files]
#include <cstdio>
#include <cstdlib>

#include "harness/experiment.hpp"
#include "harness/table.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  std::size_t corpus_files = 1200;
  if (argc > 1) corpus_files = static_cast<std::size_t>(std::strtoul(argv[1], nullptr, 10));

  corpus::CorpusSpec spec;
  spec.total_files = corpus_files;
  spec.total_dirs = std::max<std::size_t>(corpus_files / 10, 16);
  std::printf("building %zu-file corpus...\n", spec.total_files);
  const harness::Environment env = harness::make_environment(spec, /*seed=*/2016);

  core::ScoringConfig config;
  harness::TextTable table({"Application", "Score", "Detected", "Union"});
  std::size_t false_positives = 0;
  for (const sim::BenignWorkload& workload : sim::all_benign_workloads()) {
    const harness::BenignRunResult r =
        harness::run_benign_workload(env, workload, config, /*seed=*/99);
    if (r.detected) ++false_positives;
    table.add_row({r.app, std::to_string(r.final_score),
                   r.detected ? (r.expected_false_positive ? "yes (expected)" : "YES")
                              : "no",
                   r.union_triggered ? "YES" : "no"});
  }
  std::printf("\n%s\nfalse positives: %zu (paper: 1, 7-zip)\n",
              table.to_string().c_str(), false_positives);
  return 0;
}
