// Live monitor: demonstrates the filter/engine API surface directly —
// writing your own processes against the monitored filesystem, watching
// the reputation score evolve per operation, and using the user-decision
// hook (resume_process) after an alert.
//
// Run: ./build/examples/live_monitor
#include <cstdio>

#include "core/engine.hpp"
#include "corpus/builder.hpp"
#include "crypto/chacha20.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/path.hpp"

using namespace cryptodrop;

namespace {

/// A filter that narrates every operation under the documents root — the
/// kind of tooling the VFS filter stack makes trivial.
class NarratorFilter : public vfs::Filter {
 public:
  void post_operation(const vfs::OperationEvent& event, const Status& outcome) override {
    if (!vfs::path_is_under(event.path, "users/victim/documents")) return;
    std::printf("  [%s] %-7s %-55s %s\n", event.process_name.c_str(),
                std::string(vfs::op_name(event.op)).c_str(), event.path.c_str(),
                outcome.is_ok() ? "ok" : outcome.to_string().c_str());
  }
};

}  // namespace

int main() {
  vfs::FileSystem fs;
  corpus::CorpusSpec spec;
  spec.total_files = 40;
  spec.total_dirs = 6;
  Rng rng(7);
  const corpus::Corpus corpus = corpus::build_corpus(fs, spec, rng);

  core::ScoringConfig config;
  config.score_threshold = 60;  // low threshold so the demo trips quickly
  config.union_threshold = 40;
  core::AnalysisEngine engine(config);
  engine.set_alert_callback([](const core::Alert& alert) {
    std::printf(">>> ALERT: '%s' suspended (score %d >= threshold %d)\n",
                alert.process_name.c_str(), alert.score, alert.threshold);
  });
  NarratorFilter narrator;
  fs.attach_filter(&engine);
  fs.attach_filter(&narrator);

  // A hand-written "suspicious" process: encrypts files in place.
  const vfs::ProcessId evil = fs.register_process("bulk_encryptor");
  crypto::ChaCha20 cipher(to_bytes("demo-key"), to_bytes("nonce"));
  std::printf("-- bulk_encryptor starts rewriting documents --\n");
  for (const std::string& path : fs.list_files_recursive(corpus.root)) {
    auto data = fs.read_file(evil, path);
    if (!data) {
      std::printf("-- operation denied: process is suspended --\n");
      break;
    }
    if (!fs.write_file(evil, path, cipher.transform(ByteView(data.value())))) break;
    std::printf("   score is now %d\n", engine.score(evil));
  }

  const core::ProcessReport report = engine.snapshot().report_for(evil);
  std::printf("\nsuspended=%s score=%d events: entropy=%llu type=%llu sim=%llu\n",
              report.suspended ? "yes" : "no", report.score,
              static_cast<unsigned long long>(report.entropy_events),
              static_cast<unsigned long long>(report.type_change_events),
              static_cast<unsigned long long>(report.similarity_drop_events));

  // The user inspects the alert and decides to trust the process.
  std::printf("\n-- user chooses 'allow': resume_process() --\n");
  engine.resume_process(evil);
  auto data = fs.read_file(evil, fs.list_files_recursive(corpus.root).front());
  std::printf("process can read again: %s\n", data ? "yes" : "no");
  return 0;
}
