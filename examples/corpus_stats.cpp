// Corpus explorer: builds the standard experimental corpus and prints
// the statistics the paper's corpus-construction section reports —
// type mix, size distribution, directory tree shape, and the per-type
// entropy profile the indicators rely on.
//
// Run: ./build/examples/corpus_stats [files] [dirs]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/stats.hpp"
#include "corpus/builder.hpp"
#include "entropy/entropy.hpp"
#include "harness/table.hpp"
#include "vfs/filesystem.hpp"
#include "vfs/path.hpp"

using namespace cryptodrop;

int main(int argc, char** argv) {
  corpus::CorpusSpec spec;
  if (argc > 1) spec.total_files = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) spec.total_dirs = std::strtoul(argv[2], nullptr, 10);
  spec.compute_hashes = false;

  vfs::FileSystem fs;
  Rng rng(2016);
  std::printf("building corpus: %zu files over %zu directories...\n\n",
              spec.total_files, spec.total_dirs);
  const corpus::Corpus corpus = corpus::build_corpus(fs, spec, rng);

  // --- per-type breakdown ----------------------------------------------
  struct TypeStats {
    std::size_t count = 0;
    std::uint64_t bytes = 0;
    std::vector<double> sizes;
    double entropy_sum = 0.0;
    std::size_t entropy_samples = 0;
    std::size_t sub512 = 0;
  };
  std::map<std::string, TypeStats> by_type;
  for (const corpus::ManifestEntry& entry : corpus.manifest) {
    TypeStats& stats = by_type[std::string(corpus::kind_extension(entry.kind))];
    ++stats.count;
    stats.bytes += entry.size;
    stats.sizes.push_back(static_cast<double>(entry.size));
    if (entry.size < 512) ++stats.sub512;
    if (stats.entropy_samples < 10) {  // sample a few files per type
      stats.entropy_sum += entropy::shannon(ByteView(*entry.original));
      ++stats.entropy_samples;
    }
  }

  harness::TextTable table({"Type", "Files", "Share", "Median size",
                            "< 512 B", "Entropy (bits/byte)"});
  std::vector<std::pair<std::string, TypeStats*>> ordered;
  for (auto& [ext, stats] : by_type) ordered.emplace_back(ext, &stats);
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second->count > b.second->count;
  });
  for (auto& [ext, stats] : ordered) {
    table.add_row(
        {"." + ext, std::to_string(stats->count),
         harness::fmt_percent(static_cast<double>(stats->count) /
                              static_cast<double>(corpus.file_count()), 1),
         harness::fmt_double(median(stats->sizes) / 1024.0, 1) + " KiB",
         std::to_string(stats->sub512),
         harness::fmt_double(stats->entropy_sum /
                             static_cast<double>(stats->entropy_samples), 2)});
  }
  std::printf("%s\n", table.to_string().c_str());

  // --- tree shape ---------------------------------------------------------
  std::map<std::size_t, std::size_t> dirs_by_depth;
  const std::size_t root_depth = vfs::path_depth(corpus.root);
  dirs_by_depth[0] = 1;
  for (const std::string& dir : fs.list_dirs_recursive(corpus.root)) {
    ++dirs_by_depth[vfs::path_depth(dir) - root_depth];
  }
  std::printf("directory tree (%zu directories incl. root):\n",
              fs.list_dirs_recursive(corpus.root).size() + 1);
  for (const auto& [depth, count] : dirs_by_depth) {
    std::printf("  depth %zu: %4zu %s\n", depth, count,
                text_bar(static_cast<double>(count) / 200.0, 40).c_str());
  }

  // --- totals ---------------------------------------------------------------
  std::vector<double> all_sizes;
  std::size_t read_only = 0;
  for (const corpus::ManifestEntry& entry : corpus.manifest) {
    all_sizes.push_back(static_cast<double>(entry.size));
    read_only += entry.read_only ? 1 : 0;
  }
  std::printf("\ntotals: %zu files, %.1f MiB, median file %.1f KiB, "
              "%zu read-only\n[paper corpus: 5,099 files over 511 directories]\n",
              corpus.file_count(),
              static_cast<double>(corpus.total_bytes()) / (1024.0 * 1024.0),
              median(all_sizes) / 1024.0, read_only);
  return 0;
}
